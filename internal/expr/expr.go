// Package expr implements the expression trees shared by the logical and
// physical layers: column references, literals, comparison, arithmetic and
// boolean operators, scalar functions, and aggregate descriptors. It also
// provides name resolution (binding) against schemas, SQL three-valued
// evaluation, and constant folding.
package expr

import (
	"fmt"
	"strings"

	"indexeddf/internal/sqltypes"
)

// Expr is a node of an expression tree. Expressions are immutable;
// transformations build new trees.
type Expr interface {
	fmt.Stringer
	// Type returns the expression's result type. Valid once Resolved.
	Type() sqltypes.Type
	// Resolved reports whether all column references are bound.
	Resolved() bool
	// Children returns the node's sub-expressions.
	Children() []Expr
	// WithChildren rebuilds the node with new children (same arity).
	WithChildren(children []Expr) (Expr, error)
	// Eval evaluates the expression against a row. Requires Resolved.
	Eval(row sqltypes.Row) (sqltypes.Value, error)
}

// ---------------------------------------------------------------------------
// Literal

// Literal is a constant value.
type Literal struct{ V sqltypes.Value }

// Lit builds a literal expression.
func Lit(v sqltypes.Value) *Literal { return &Literal{V: v} }

// LitInt64 builds a BIGINT literal.
func LitInt64(i int64) *Literal { return Lit(sqltypes.NewInt64(i)) }

// LitString builds a STRING literal.
func LitString(s string) *Literal { return Lit(sqltypes.NewString(s)) }

func (l *Literal) String() string {
	if l.V.T == sqltypes.String {
		return "'" + l.V.S + "'"
	}
	return l.V.String()
}
func (l *Literal) Type() sqltypes.Type { return l.V.T }
func (l *Literal) Resolved() bool      { return true }
func (l *Literal) Children() []Expr    { return nil }
func (l *Literal) WithChildren(c []Expr) (Expr, error) {
	if len(c) != 0 {
		return nil, fmt.Errorf("expr: literal takes no children")
	}
	return l, nil
}
func (l *Literal) Eval(sqltypes.Row) (sqltypes.Value, error) { return l.V, nil }

// ---------------------------------------------------------------------------
// Column references

// Col is an unresolved column reference ("name" or "qualifier.name").
type Col struct{ Name string }

// C builds an unresolved column reference.
func C(name string) *Col { return &Col{Name: name} }

func (c *Col) String() string      { return c.Name }
func (c *Col) Type() sqltypes.Type { return sqltypes.Unknown }
func (c *Col) Resolved() bool      { return false }
func (c *Col) Children() []Expr    { return nil }
func (c *Col) WithChildren(ch []Expr) (Expr, error) {
	if len(ch) != 0 {
		return nil, fmt.Errorf("expr: column ref takes no children")
	}
	return c, nil
}
func (c *Col) Eval(sqltypes.Row) (sqltypes.Value, error) {
	return sqltypes.Null, fmt.Errorf("expr: evaluating unresolved column %q", c.Name)
}

// Bound is a resolved column reference addressing a row ordinal.
type Bound struct {
	Ordinal int
	T       sqltypes.Type
	Name    string
}

// B builds a bound reference.
func B(ordinal int, t sqltypes.Type, name string) *Bound {
	return &Bound{Ordinal: ordinal, T: t, Name: name}
}

func (b *Bound) String() string      { return b.Name }
func (b *Bound) Type() sqltypes.Type { return b.T }
func (b *Bound) Resolved() bool      { return true }
func (b *Bound) Children() []Expr    { return nil }
func (b *Bound) WithChildren(c []Expr) (Expr, error) {
	if len(c) != 0 {
		return nil, fmt.Errorf("expr: bound ref takes no children")
	}
	return b, nil
}
func (b *Bound) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	if b.Ordinal < 0 || b.Ordinal >= len(row) {
		return sqltypes.Null, fmt.Errorf("expr: ordinal %d out of range for row of %d", b.Ordinal, len(row))
	}
	return row[b.Ordinal], nil
}

// ---------------------------------------------------------------------------
// Comparison

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) String() string {
	return [...]string{"=", "<>", "<", "<=", ">", ">="}[op]
}

// Cmp is a binary comparison with SQL NULL semantics (NULL operand yields
// NULL).
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// NewCmp builds a comparison.
func NewCmp(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

func (c *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}
func (c *Cmp) Type() sqltypes.Type { return sqltypes.Bool }
func (c *Cmp) Resolved() bool      { return c.L.Resolved() && c.R.Resolved() }
func (c *Cmp) Children() []Expr    { return []Expr{c.L, c.R} }
func (c *Cmp) WithChildren(ch []Expr) (Expr, error) {
	if len(ch) != 2 {
		return nil, fmt.Errorf("expr: comparison takes 2 children")
	}
	return &Cmp{Op: c.Op, L: ch[0], R: ch[1]}, nil
}
func (c *Cmp) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	l, err := c.L.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	r, err := c.R.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return sqltypes.Null, nil
	}
	cmp := sqltypes.Compare(l, r)
	var b bool
	switch c.Op {
	case Eq:
		b = cmp == 0
	case Ne:
		b = cmp != 0
	case Lt:
		b = cmp < 0
	case Le:
		b = cmp <= 0
	case Gt:
		b = cmp > 0
	case Ge:
		b = cmp >= 0
	}
	return sqltypes.NewBool(b), nil
}

// ---------------------------------------------------------------------------
// Arithmetic

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

func (op ArithOp) String() string { return [...]string{"+", "-", "*", "/", "%"}[op] }

// Arith is a binary arithmetic expression over numeric operands.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// NewArith builds an arithmetic expression.
func NewArith(op ArithOp, l, r Expr) *Arith { return &Arith{Op: op, L: l, R: r} }

func (a *Arith) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }
func (a *Arith) Type() sqltypes.Type {
	t, err := sqltypes.CommonType(a.L.Type(), a.R.Type())
	if err != nil {
		return sqltypes.Unknown
	}
	return t
}
func (a *Arith) Resolved() bool   { return a.L.Resolved() && a.R.Resolved() }
func (a *Arith) Children() []Expr { return []Expr{a.L, a.R} }
func (a *Arith) WithChildren(ch []Expr) (Expr, error) {
	if len(ch) != 2 {
		return nil, fmt.Errorf("expr: arithmetic takes 2 children")
	}
	return &Arith{Op: a.Op, L: ch[0], R: ch[1]}, nil
}
func (a *Arith) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	l, err := a.L.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	r, err := a.R.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	if l.IsNull() || r.IsNull() {
		return sqltypes.Null, nil
	}
	t, err := sqltypes.CommonType(l.T, r.T)
	if err != nil {
		return sqltypes.Null, fmt.Errorf("expr: %s: %v", a, err)
	}
	if t == sqltypes.Float64 {
		lf, rf := l.Float64Val(), r.Float64Val()
		switch a.Op {
		case Add:
			return sqltypes.NewFloat64(lf + rf), nil
		case Sub:
			return sqltypes.NewFloat64(lf - rf), nil
		case Mul:
			return sqltypes.NewFloat64(lf * rf), nil
		case Div:
			if rf == 0 {
				return sqltypes.Null, nil
			}
			return sqltypes.NewFloat64(lf / rf), nil
		case Mod:
			if int64(rf) == 0 {
				// A fractional divisor in (-1, 1) truncates to zero; NULL,
				// not an integer-divide panic.
				return sqltypes.Null, nil
			}
			return sqltypes.NewFloat64(float64(int64(lf) % int64(rf))), nil
		}
	}
	li, ri := l.Int64Val(), r.Int64Val()
	var out int64
	switch a.Op {
	case Add:
		out = li + ri
	case Sub:
		out = li - ri
	case Mul:
		out = li * ri
	case Div:
		if ri == 0 {
			return sqltypes.Null, nil
		}
		out = li / ri
	case Mod:
		if ri == 0 {
			return sqltypes.Null, nil
		}
		out = li % ri
	}
	if t == sqltypes.Int32 {
		return sqltypes.NewInt32(int32(out)), nil
	}
	return sqltypes.NewInt64(out), nil
}

// ---------------------------------------------------------------------------
// Boolean connectives

// LogicOp enumerates boolean connectives.
type LogicOp uint8

// Boolean connectives.
const (
	AndOp LogicOp = iota
	OrOp
)

func (op LogicOp) String() string { return [...]string{"AND", "OR"}[op] }

// Logic is a binary AND/OR with three-valued semantics.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// And builds a conjunction.
func And(l, r Expr) *Logic { return &Logic{Op: AndOp, L: l, R: r} }

// Or builds a disjunction.
func Or(l, r Expr) *Logic { return &Logic{Op: OrOp, L: l, R: r} }

func (lg *Logic) String() string      { return fmt.Sprintf("(%s %s %s)", lg.L, lg.Op, lg.R) }
func (lg *Logic) Type() sqltypes.Type { return sqltypes.Bool }
func (lg *Logic) Resolved() bool      { return lg.L.Resolved() && lg.R.Resolved() }
func (lg *Logic) Children() []Expr    { return []Expr{lg.L, lg.R} }
func (lg *Logic) WithChildren(ch []Expr) (Expr, error) {
	if len(ch) != 2 {
		return nil, fmt.Errorf("expr: logic takes 2 children")
	}
	return &Logic{Op: lg.Op, L: ch[0], R: ch[1]}, nil
}
func (lg *Logic) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	l, err := lg.L.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	// Short circuit where three-valued logic allows it.
	if !l.IsNull() {
		if lg.Op == AndOp && !l.Bool() {
			return sqltypes.NewBool(false), nil
		}
		if lg.Op == OrOp && l.Bool() {
			return sqltypes.NewBool(true), nil
		}
	}
	r, err := lg.R.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	switch {
	case lg.Op == AndOp:
		if !r.IsNull() && !r.Bool() {
			return sqltypes.NewBool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(true), nil
	default: // OrOp
		if !r.IsNull() && r.Bool() {
			return sqltypes.NewBool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(false), nil
	}
}

// Not negates a boolean expression (NULL stays NULL).
type Not struct{ E Expr }

// NewNot builds a negation.
func NewNot(e Expr) *Not { return &Not{E: e} }

func (n *Not) String() string      { return fmt.Sprintf("(NOT %s)", n.E) }
func (n *Not) Type() sqltypes.Type { return sqltypes.Bool }
func (n *Not) Resolved() bool      { return n.E.Resolved() }
func (n *Not) Children() []Expr    { return []Expr{n.E} }
func (n *Not) WithChildren(ch []Expr) (Expr, error) {
	if len(ch) != 1 {
		return nil, fmt.Errorf("expr: NOT takes 1 child")
	}
	return &Not{E: ch[0]}, nil
}
func (n *Not) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := n.E.Eval(row)
	if err != nil || v.IsNull() {
		return sqltypes.Null, err
	}
	return sqltypes.NewBool(!v.Bool()), nil
}

// IsNull tests nullness; with Negate it is IS NOT NULL.
type IsNull struct {
	E      Expr
	Negate bool
}

func (i *IsNull) String() string {
	if i.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", i.E)
	}
	return fmt.Sprintf("(%s IS NULL)", i.E)
}
func (i *IsNull) Type() sqltypes.Type { return sqltypes.Bool }
func (i *IsNull) Resolved() bool      { return i.E.Resolved() }
func (i *IsNull) Children() []Expr    { return []Expr{i.E} }
func (i *IsNull) WithChildren(ch []Expr) (Expr, error) {
	if len(ch) != 1 {
		return nil, fmt.Errorf("expr: IS NULL takes 1 child")
	}
	return &IsNull{E: ch[0], Negate: i.Negate}, nil
}
func (i *IsNull) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := i.E.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	return sqltypes.NewBool(v.IsNull() != i.Negate), nil
}

// ---------------------------------------------------------------------------
// Alias and Cast

// Alias names an expression in a projection list.
type Alias struct {
	E    Expr
	Name string
}

// As builds an alias.
func As(e Expr, name string) *Alias { return &Alias{E: e, Name: name} }

func (a *Alias) String() string      { return fmt.Sprintf("%s AS %s", a.E, a.Name) }
func (a *Alias) Type() sqltypes.Type { return a.E.Type() }
func (a *Alias) Resolved() bool      { return a.E.Resolved() }
func (a *Alias) Children() []Expr    { return []Expr{a.E} }
func (a *Alias) WithChildren(ch []Expr) (Expr, error) {
	if len(ch) != 1 {
		return nil, fmt.Errorf("expr: alias takes 1 child")
	}
	return &Alias{E: ch[0], Name: a.Name}, nil
}
func (a *Alias) Eval(row sqltypes.Row) (sqltypes.Value, error) { return a.E.Eval(row) }

// Cast converts its operand to type To.
type Cast struct {
	E  Expr
	To sqltypes.Type
}

func (c *Cast) String() string      { return fmt.Sprintf("CAST(%s AS %s)", c.E, c.To) }
func (c *Cast) Type() sqltypes.Type { return c.To }
func (c *Cast) Resolved() bool      { return c.E.Resolved() }
func (c *Cast) Children() []Expr    { return []Expr{c.E} }
func (c *Cast) WithChildren(ch []Expr) (Expr, error) {
	if len(ch) != 1 {
		return nil, fmt.Errorf("expr: cast takes 1 child")
	}
	return &Cast{E: ch[0], To: c.To}, nil
}
func (c *Cast) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	v, err := c.E.Eval(row)
	if err != nil {
		return sqltypes.Null, err
	}
	return v.Cast(c.To)
}

// ---------------------------------------------------------------------------
// Scalar functions

// Func is a scalar function call.
type Func struct {
	Name string
	Args []Expr
}

// NewFunc builds a scalar function call (name is case-insensitive).
func NewFunc(name string, args ...Expr) *Func {
	return &Func{Name: strings.ToUpper(name), Args: args}
}

func (f *Func) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(parts, ", "))
}
func (f *Func) Type() sqltypes.Type {
	switch f.Name {
	case "UPPER", "LOWER", "CONCAT", "SUBSTR":
		return sqltypes.String
	case "LENGTH", "YEAR":
		return sqltypes.Int64
	case "LIKE":
		return sqltypes.Bool
	case "ABS":
		if len(f.Args) == 1 {
			return f.Args[0].Type()
		}
		return sqltypes.Unknown
	case "COALESCE":
		for _, a := range f.Args {
			if t := a.Type(); t != sqltypes.Unknown {
				return t
			}
		}
		return sqltypes.Unknown
	}
	return sqltypes.Unknown
}
func (f *Func) Resolved() bool {
	for _, a := range f.Args {
		if !a.Resolved() {
			return false
		}
	}
	return true
}
func (f *Func) Children() []Expr { return f.Args }
func (f *Func) WithChildren(ch []Expr) (Expr, error) {
	if len(ch) != len(f.Args) {
		return nil, fmt.Errorf("expr: %s takes %d args", f.Name, len(f.Args))
	}
	return &Func{Name: f.Name, Args: ch}, nil
}

func (f *Func) Eval(row sqltypes.Row) (sqltypes.Value, error) {
	args := make([]sqltypes.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(row)
		if err != nil {
			return sqltypes.Null, err
		}
		args[i] = v
	}
	switch f.Name {
	case "UPPER":
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(strings.ToUpper(args[0].S)), nil
	case "LOWER":
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(strings.ToLower(args[0].S)), nil
	case "LENGTH":
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewInt64(int64(len(args[0].S))), nil
	case "ABS":
		v := args[0]
		if v.IsNull() {
			return sqltypes.Null, nil
		}
		switch v.T {
		case sqltypes.Float64:
			if v.F < 0 {
				return sqltypes.NewFloat64(-v.F), nil
			}
			return v, nil
		default:
			if v.I < 0 {
				return sqltypes.Value{T: v.T, I: -v.I}, nil
			}
			return v, nil
		}
	case "CONCAT":
		var sb strings.Builder
		for _, a := range args {
			if !a.IsNull() {
				sb.WriteString(a.String())
			}
		}
		return sqltypes.NewString(sb.String()), nil
	case "SUBSTR":
		if len(args) < 2 || args[0].IsNull() || args[1].IsNull() {
			return sqltypes.Null, nil
		}
		s := args[0].S
		start := int(args[1].Int64Val()) - 1 // SQL is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return sqltypes.NewString(""), nil
		}
		end := len(s)
		if len(args) == 3 && !args[2].IsNull() {
			if n := int(args[2].Int64Val()); start+n < end {
				end = start + n
			}
		}
		return sqltypes.NewString(s[start:end]), nil
	case "YEAR":
		if args[0].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewInt64(int64(args[0].Time().Year())), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return sqltypes.Null, nil
	case "LIKE":
		if len(args) != 2 || args[0].IsNull() || args[1].IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(likeMatch(args[0].S, args[1].S)), nil
	}
	return sqltypes.Null, fmt.Errorf("expr: unknown function %s", f.Name)
}

// likeMatch implements SQL LIKE: '%' matches any run, '_' any single byte.
func likeMatch(s, pattern string) bool {
	// Dynamic-programming match over bytes.
	m, n := len(s), len(pattern)
	// dp[j] = does pattern[:j] match s[:i] for the current i.
	prev := make([]bool, n+1)
	cur := make([]bool, n+1)
	prev[0] = true
	for j := 1; j <= n; j++ {
		prev[j] = prev[j-1] && pattern[j-1] == '%'
	}
	for i := 1; i <= m; i++ {
		cur[0] = false
		for j := 1; j <= n; j++ {
			switch pattern[j-1] {
			case '%':
				cur[j] = cur[j-1] || prev[j]
			case '_':
				cur[j] = prev[j-1]
			default:
				cur[j] = prev[j-1] && pattern[j-1] == s[i-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// ---------------------------------------------------------------------------
// Aggregates (descriptors consumed by the Aggregate plan node)

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	CountAgg AggFunc = iota
	CountStarAgg
	SumAgg
	MinAgg
	MaxAgg
	AvgAgg
)

func (f AggFunc) String() string {
	return [...]string{"COUNT", "COUNT(*)", "SUM", "MIN", "MAX", "AVG"}[f]
}

// Agg describes one aggregate output column.
type Agg struct {
	Func AggFunc
	Arg  Expr // nil for COUNT(*)
	Name string
}

// ResultType returns the aggregate's output type.
func (a Agg) ResultType() sqltypes.Type {
	switch a.Func {
	case CountAgg, CountStarAgg:
		return sqltypes.Int64
	case AvgAgg:
		return sqltypes.Float64
	case SumAgg:
		if t := a.Arg.Type(); t == sqltypes.Float64 {
			return sqltypes.Float64
		}
		return sqltypes.Int64
	default:
		if a.Arg != nil {
			return a.Arg.Type()
		}
		return sqltypes.Unknown
	}
}

func (a Agg) String() string {
	if a.Func == CountStarAgg {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Func, a.Arg)
}
