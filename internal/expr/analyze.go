package expr

import (
	"fmt"

	"indexeddf/internal/sqltypes"
)

// Transform rewrites the tree bottom-up: children first, then fn on the
// rebuilt node.
func Transform(e Expr, fn func(Expr) (Expr, error)) (Expr, error) {
	children := e.Children()
	if len(children) > 0 {
		newChildren := make([]Expr, len(children))
		changed := false
		for i, c := range children {
			nc, err := Transform(c, fn)
			if err != nil {
				return nil, err
			}
			newChildren[i] = nc
			if nc != c {
				changed = true
			}
		}
		if changed {
			var err error
			e, err = e.WithChildren(newChildren)
			if err != nil {
				return nil, err
			}
		}
	}
	return fn(e)
}

// Walk visits the tree top-down, stopping a subtree when fn returns false.
func Walk(e Expr, fn func(Expr) bool) {
	if !fn(e) {
		return
	}
	for _, c := range e.Children() {
		Walk(c, fn)
	}
}

// Bind resolves all column references in e against schema, returning a tree
// of Bound references ready for evaluation.
func Bind(e Expr, schema *sqltypes.Schema) (Expr, error) {
	return Transform(e, func(n Expr) (Expr, error) {
		c, ok := n.(*Col)
		if !ok {
			return n, nil
		}
		i := schema.IndexOf(c.Name)
		if i < 0 {
			return nil, fmt.Errorf("expr: column %q not found in %s", c.Name, schema)
		}
		f := schema.Field(i)
		return B(i, f.Type, f.Name), nil
	})
}

// Shift rebases every Bound reference by delta ordinals; used when an
// expression bound against a join's right side must evaluate against the
// concatenated row.
func Shift(e Expr, delta int) (Expr, error) {
	return Transform(e, func(n Expr) (Expr, error) {
		if b, ok := n.(*Bound); ok {
			return B(b.Ordinal+delta, b.T, b.Name), nil
		}
		return n, nil
	})
}

// FoldConstants pre-evaluates constant subtrees (no column references) into
// literals — one of the optimizer's logical rules.
func FoldConstants(e Expr) (Expr, error) {
	return Transform(e, func(n Expr) (Expr, error) {
		switch n.(type) {
		case *Literal, *Col, *Bound, *Alias:
			return n, nil
		}
		if !constant(n) {
			return n, nil
		}
		v, err := n.Eval(nil)
		if err != nil {
			// Leave the node for runtime (e.g. cast error surfaces there).
			return n, nil //nolint:nilerr
		}
		return Lit(v), nil
	})
}

func constant(e Expr) bool {
	ok := true
	Walk(e, func(n Expr) bool {
		switch n.(type) {
		case *Col, *Bound, *Param:
			// Params are constant only once bound; folding them would
			// evaluate the placeholder error.
			ok = false
			return false
		}
		return true
	})
	return ok
}

// SplitConjunction flattens nested ANDs into a list of conjuncts.
func SplitConjunction(e Expr) []Expr {
	if lg, ok := e.(*Logic); ok && lg.Op == AndOp {
		return append(SplitConjunction(lg.L), SplitConjunction(lg.R)...)
	}
	return []Expr{e}
}

// JoinConjuncts rebuilds a conjunction from a list (nil for empty).
func JoinConjuncts(conjuncts []Expr) Expr {
	var out Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = And(out, c)
		}
	}
	return out
}

// ReferencedColumns returns the set of unresolved column names in e.
func ReferencedColumns(e Expr) map[string]bool {
	out := map[string]bool{}
	Walk(e, func(n Expr) bool {
		if c, ok := n.(*Col); ok {
			out[c.Name] = true
		}
		return true
	})
	return out
}

// ReferencedOrdinals returns the set of bound ordinals in e.
func ReferencedOrdinals(e Expr) map[int]bool {
	out := map[int]bool{}
	Walk(e, func(n Expr) bool {
		if b, ok := n.(*Bound); ok {
			out[b.Ordinal] = true
		}
		return true
	})
	return out
}

// MaxOrdinal returns the largest bound ordinal in e, or -1.
func MaxOrdinal(e Expr) int {
	max := -1
	Walk(e, func(n Expr) bool {
		if b, ok := n.(*Bound); ok && b.Ordinal > max {
			max = b.Ordinal
		}
		return true
	})
	return max
}

// EqualityWithLiteral recognizes the pattern the index-aware rules look
// for: `col = literal` (either operand order). It returns the bound column
// and the literal value.
func EqualityWithLiteral(e Expr) (col *Bound, lit sqltypes.Value, ok bool) {
	c, isCmp := e.(*Cmp)
	if !isCmp || c.Op != Eq {
		return nil, sqltypes.Null, false
	}
	if b, okL := c.L.(*Bound); okL {
		if l, okR := c.R.(*Literal); okR {
			return b, l.V, true
		}
	}
	if b, okR := c.R.(*Bound); okR {
		if l, okL := c.L.(*Literal); okL {
			return b, l.V, true
		}
	}
	return nil, sqltypes.Null, false
}

// ColumnEquality recognizes `bound = bound` equi-join conditions, returning
// both sides.
func ColumnEquality(e Expr) (l, r *Bound, ok bool) {
	c, isCmp := e.(*Cmp)
	if !isCmp || c.Op != Eq {
		return nil, nil, false
	}
	lb, okL := c.L.(*Bound)
	rb, okR := c.R.(*Bound)
	if okL && okR {
		return lb, rb, true
	}
	return nil, nil, false
}

// EvalPredicate evaluates a boolean expression as a filter: true keeps the
// row; NULL and false drop it.
func EvalPredicate(e Expr, row sqltypes.Row) (bool, error) {
	v, err := e.Eval(row)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.Bool(), nil
}
