package expr

import (
	"fmt"
	"math/rand"
	"testing"

	"indexeddf/internal/sqltypes"
	"indexeddf/internal/vector"
)

// The vectorized kernels must agree with the row evaluator on every input,
// including NULLs, division by zero, Int32 wraparound and three-valued
// logic. These tests compare both evaluators over random batches.

func vecTestSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "i32", Type: sqltypes.Int32, Nullable: true},
		sqltypes.Field{Name: "i64", Type: sqltypes.Int64, Nullable: true},
		sqltypes.Field{Name: "f", Type: sqltypes.Float64, Nullable: true},
		sqltypes.Field{Name: "s", Type: sqltypes.String, Nullable: true},
		sqltypes.Field{Name: "b", Type: sqltypes.Bool, Nullable: true},
		sqltypes.Field{Name: "ts", Type: sqltypes.Timestamp, Nullable: true},
	)
}

func vecTestRows(rng *rand.Rand, n int) []sqltypes.Row {
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		row := sqltypes.Row{
			sqltypes.NewInt32(int32(rng.Intn(21) - 10)),
			sqltypes.NewInt64(int64(rng.Intn(21) - 10)),
			sqltypes.NewFloat64(float64(rng.Intn(21)-10) / 2),
			sqltypes.NewString(fmt.Sprintf("k%d", rng.Intn(5))),
			sqltypes.NewBool(rng.Intn(2) == 0),
			sqltypes.NewTimestamp(int64(rng.Intn(1000))),
		}
		for c := range row {
			if rng.Intn(4) == 0 {
				row[c] = sqltypes.Null
			}
		}
		rows[i] = row
	}
	return rows
}

func bindCol(t *testing.T, schema *sqltypes.Schema, name string) Expr {
	t.Helper()
	e, err := Bind(C(name), schema)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// checkKernel evaluates e both ways over rows and compares.
func checkKernel(t *testing.T, schema *sqltypes.Schema, rows []sqltypes.Row, e Expr) {
	t.Helper()
	ve, ok := CompileVec(e)
	if !ok {
		t.Fatalf("%s did not compile", e)
	}
	b := vector.NewBatch(schema)
	for _, r := range rows {
		if err := b.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ve.Eval(b)
	if err != nil {
		t.Fatalf("%s: vector eval: %v", e, err)
	}
	if got.Len() != len(rows) {
		t.Fatalf("%s: result has %d entries, want %d", e, got.Len(), len(rows))
	}
	for i, r := range rows {
		want, err := e.Eval(r)
		if err != nil {
			t.Fatalf("%s row %d: row eval: %v", e, i, err)
		}
		g := got.Get(i)
		if want.IsNull() != g.IsNull() {
			t.Fatalf("%s row %d (%s): null mismatch: vec=%s row=%s", e, i, r, g, want)
		}
		if !want.IsNull() && sqltypes.Compare(want, g) != 0 {
			t.Fatalf("%s row %d (%s): vec=%s row=%s", e, i, r, g, want)
		}
	}
}

func TestVecKernelsMatchRowEval(t *testing.T) {
	schema := vecTestSchema()
	rng := rand.New(rand.NewSource(42))
	rows := vecTestRows(rng, 777)

	i32 := bindCol(t, schema, "i32")
	i64 := bindCol(t, schema, "i64")
	f := bindCol(t, schema, "f")
	s := bindCol(t, schema, "s")
	bcol := bindCol(t, schema, "b")
	ts := bindCol(t, schema, "ts")

	ops := []CmpOp{Eq, Ne, Lt, Le, Gt, Ge}
	var exprs []Expr
	for _, op := range ops {
		exprs = append(exprs,
			NewCmp(op, i64, LitInt64(3)),                 // int vs scalar
			NewCmp(op, LitInt64(3), i64),                 // scalar vs int (mirrored)
			NewCmp(op, i32, i64),                         // mixed int widths
			NewCmp(op, f, i64),                           // float vs int
			NewCmp(op, f, Lit(sqltypes.NewFloat64(0.5))), // float vs scalar
			NewCmp(op, s, LitString("k2")),               // string vs scalar
			NewCmp(op, ts, i64),                          // timestamp vs int
		)
	}
	for _, aop := range []ArithOp{Add, Sub, Mul, Div, Mod} {
		exprs = append(exprs,
			NewArith(aop, i64, i32),         // Int64 result
			NewArith(aop, i32, i32),         // Int32 result (wraparound)
			NewArith(aop, f, i64),           // Float64 result
			NewArith(aop, i64, LitInt64(0)), // division by zero -> NULL
		)
	}
	exprs = append(exprs,
		// Fractional divisors in (-1, 1) truncate to zero: NULL, not an
		// integer-divide panic (regression).
		NewArith(Mod, f, Lit(sqltypes.NewFloat64(0.5))),
		NewArith(Mod, f, f),
		NewArith(Mod, i64, Lit(sqltypes.NewFloat64(0.25))),
		And(NewCmp(Gt, i64, LitInt64(0)), NewCmp(Lt, i32, LitInt64(5))),
		Or(NewCmp(Gt, i64, LitInt64(0)), bcol),
		And(bcol, bcol),
		Or(bcol, NewNot(bcol)),
		NewNot(NewCmp(Eq, s, LitString("k1"))),
		&IsNull{E: f},
		&IsNull{E: f, Negate: true},
		As(NewArith(Add, i64, LitInt64(7)), "aliased"),
		NewCmp(Gt, NewArith(Mul, i64, LitInt64(2)), NewArith(Add, i32, i64)),
	)
	for _, e := range exprs {
		checkKernel(t, schema, rows, e)
	}
}

// TestVecKernelEmptyAndChunked checks kernels across several batch shapes.
func TestVecKernelEmptyAndChunked(t *testing.T) {
	schema := vecTestSchema()
	rng := rand.New(rand.NewSource(3))
	e := And(NewCmp(Gt, bindCol(t, schema, "i64"), LitInt64(0)),
		NewCmp(Ne, bindCol(t, schema, "s"), LitString("k0")))
	for _, n := range []int{0, 1, 63, 64, 65, 128, 1024} {
		checkKernel(t, schema, vecTestRows(rng, n), e)
	}
}

// TestCompileVecRejects pins the fallback boundary: unsupported nodes must
// not compile (the planner keeps those operators row-at-a-time).
func TestCompileVecRejects(t *testing.T) {
	schema := vecTestSchema()
	s := bindCol(t, schema, "s")
	i64 := bindCol(t, schema, "i64")
	bad := []Expr{
		C("unbound"),                       // unresolved
		NewFunc("UPPER", s),                // scalar function
		&Cast{E: i64, To: sqltypes.String}, // cast
		Lit(sqltypes.Null),                 // NULL literal
		NewCmp(Eq, s, i64),                 // incompatible comparison
		NewArith(Add, s, s),                // non-numeric arithmetic
		And(i64, i64),                      // non-boolean logic operands
	}
	for _, e := range bad {
		if CanVectorize(e) {
			t.Errorf("%s unexpectedly compiled", e)
		}
	}
	if !CanVectorize(NewCmp(Eq, i64, LitInt64(1))) {
		t.Error("simple comparison failed to compile")
	}
}
