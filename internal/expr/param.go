package expr

import (
	"fmt"

	"indexeddf/internal/sqltypes"
)

// Param is a prepared-statement placeholder (`?` in SQL), identified by its
// 0-based position in the statement. It binds no column, so it reports
// Resolved and survives analysis; evaluating an unbound parameter is an
// error — execution requires bind-time substitution (the physical plan
// rewrite replacing each Param with its bound literal) first.
type Param struct{ Index int }

// NewParam builds the placeholder for 0-based position index.
func NewParam(index int) *Param { return &Param{Index: index} }

func (p *Param) String() string      { return fmt.Sprintf("?%d", p.Index+1) }
func (p *Param) Type() sqltypes.Type { return sqltypes.Unknown }
func (p *Param) Resolved() bool      { return true }
func (p *Param) Children() []Expr    { return nil }
func (p *Param) WithChildren(c []Expr) (Expr, error) {
	if len(c) != 0 {
		return nil, fmt.Errorf("expr: parameter takes no children")
	}
	return p, nil
}
func (p *Param) Eval(sqltypes.Row) (sqltypes.Value, error) {
	return sqltypes.Null, fmt.Errorf("expr: unbound parameter ?%d (execute via a prepared statement)", p.Index+1)
}

// EqualityWithKeyConst generalizes EqualityWithLiteral to the shapes the
// index-aware rules accept as a lookup key: `col = literal` and
// `col = ?` (either operand order). It returns the bound column and the
// key expression (a *Literal or *Param).
func EqualityWithKeyConst(e Expr) (col *Bound, key Expr, ok bool) {
	c, isCmp := e.(*Cmp)
	if !isCmp || c.Op != Eq {
		return nil, nil, false
	}
	isKey := func(x Expr) bool {
		switch x.(type) {
		case *Literal, *Param:
			return true
		}
		return false
	}
	if b, okL := c.L.(*Bound); okL && isKey(c.R) {
		return b, c.R, true
	}
	if b, okR := c.R.(*Bound); okR && isKey(c.L) {
		return b, c.L, true
	}
	return nil, nil, false
}
