package view

import (
	"fmt"

	"indexeddf/internal/catalog"
	"indexeddf/internal/core"
	"indexeddf/internal/expr"
	"indexeddf/internal/plan"
	"indexeddf/internal/sqltypes"
)

// Def is a view's definition: a bound aggregate query over one indexed
// base table. All expressions are bound against the base table schema
// (ordinals address base rows directly), which makes both maintenance
// (evaluate on logged rows) and matching (ordinal-canonical comparison,
// insensitive to table aliases) cheap.
type Def struct {
	// Name is the view's catalog name.
	Name string
	// SQL is the defining SELECT text (SHOW/EXPLAIN/docs).
	SQL string
	// Base is the indexed table the view aggregates over.
	Base *core.IndexedTable
	// BaseName is the base table's catalog name.
	BaseName string
	// Filter is the WHERE predicate bound against the base schema; nil
	// when absent.
	Filter expr.Expr
	// Groups are the bound GROUP BY expressions.
	Groups []expr.Expr
	// Aggs are the aggregates with bound arguments.
	Aggs []expr.Agg
	// Schema is the view's visible schema in SELECT-list order.
	Schema *sqltypes.Schema
	// StateSchema is the internal layout: group columns then aggregate
	// columns.
	StateSchema *sqltypes.Schema
	// Out maps each visible column to its StateSchema ordinal.
	Out []int

	// canonical forms, precomputed for matching
	canonFilter string
	canonGroups []string
	canonAggs   []string
}

func (d *Def) validate() error {
	if d.Base == nil {
		return fmt.Errorf("view: %q has no base table", d.Name)
	}
	if len(d.Groups) == 0 && len(d.Aggs) == 0 {
		return fmt.Errorf("view: %q computes nothing", d.Name)
	}
	return nil
}

// finish precomputes canonical forms and the state schema.
func (d *Def) finish() {
	d.canonFilter = Canon(d.Filter)
	d.canonGroups = make([]string, len(d.Groups))
	for i, g := range d.Groups {
		d.canonGroups[i] = Canon(g)
	}
	d.canonAggs = make([]string, len(d.Aggs))
	for i, a := range d.Aggs {
		d.canonAggs[i] = canonAgg(a)
	}
	if d.StateSchema == nil {
		fields := make([]sqltypes.Field, 0, len(d.Groups)+len(d.Aggs))
		for i, g := range d.Groups {
			fields = append(fields, sqltypes.Field{Name: fmt.Sprintf("g%d", i), Type: g.Type(), Nullable: true})
		}
		for i, a := range d.Aggs {
			fields = append(fields, sqltypes.Field{Name: fmt.Sprintf("a%d", i), Type: a.ResultType(), Nullable: true})
		}
		d.StateSchema = sqltypes.NewSchema(fields...)
	}
}

// Matches reports whether an aggregation with the given shape is answered
// by this definition: same base table, identical filter, identical group
// list (same order), and every requested aggregate present in the view
// (the view may maintain more). cols returns the state ordinals of the
// output columns, groups first then the requested aggregates in order.
func (d *Def) Matches(base *core.IndexedTable, filter expr.Expr, groups []expr.Expr, aggs []expr.Agg) ([]int, bool) {
	if base != d.Base {
		return nil, false
	}
	if Canon(filter) != d.canonFilter {
		return nil, false
	}
	if len(groups) != len(d.Groups) {
		return nil, false
	}
	for i, g := range groups {
		if Canon(g) != d.canonGroups[i] {
			return nil, false
		}
	}
	cols := make([]int, 0, len(groups)+len(aggs))
	for i := range groups {
		cols = append(cols, i)
	}
	for _, a := range aggs {
		want := canonAgg(a)
		found := -1
		for j, c := range d.canonAggs {
			if c == want {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, false
		}
		cols = append(cols, len(d.Groups)+found)
	}
	return cols, true
}

// Canon renders a bound expression in alias-insensitive canonical form:
// column references print as their ordinal, aliases are stripped. Two
// bound expressions over the same base schema are semantically identical
// iff their canonical strings are equal (modulo commutativity, which we
// deliberately do not normalize).
func Canon(e expr.Expr) string {
	if e == nil {
		return ""
	}
	c, err := expr.Transform(e, func(n expr.Expr) (expr.Expr, error) {
		switch t := n.(type) {
		case *expr.Bound:
			return expr.B(t.Ordinal, t.T, fmt.Sprintf("$%d", t.Ordinal)), nil
		case *expr.Alias:
			return t.E, nil
		}
		return n, nil
	})
	if err != nil {
		return e.String()
	}
	return c.String()
}

func canonAgg(a expr.Agg) string {
	if a.Func == expr.CountStarAgg {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s)", a.Func, Canon(a.Arg))
}

// ---------------------------------------------------------------------------
// Definition extraction from logical plans

// DefFromPlan pattern-matches an analyzed, optimized logical plan into a
// view definition. The supported shape is exactly what the view engine
// maintains incrementally:
//
//	[Project over] Aggregate over [Filter over] Relation(IndexedTable)
//
// where the projection only renames/reorders the aggregate's outputs.
// Anything else (joins, HAVING, ORDER BY, LIMIT, derived tables, vanilla
// column tables) is rejected with a descriptive error.
func DefFromPlan(name, sql string, n plan.Node) (Def, error) {
	bad := func(why string) (Def, error) {
		return Def{}, fmt.Errorf("view: unsupported query for materialized view %q: %s (want SELECT <group cols, aggregates> FROM <indexed table> [WHERE ...] GROUP BY ...)", name, why)
	}

	node := n
	var proj *plan.Project
	if p, ok := node.(*plan.Project); ok {
		proj = p
		node = p.Child
	}
	agg, ok := node.(*plan.Aggregate)
	if !ok {
		return bad(fmt.Sprintf("top-level operator is %T, not an aggregation", node))
	}
	child := agg.Child
	var filter expr.Expr
	if f, ok := child.(*plan.Filter); ok {
		filter = f.Cond
		child = f.Child
	}
	rel, ok := child.(*plan.Relation)
	if !ok {
		return bad(fmt.Sprintf("aggregation input is %T, not a base table", child))
	}
	it, ok := rel.Table.(*catalog.IndexedTable)
	if !ok {
		return bad(fmt.Sprintf("base table %q is not an Indexed DataFrame table", rel.Table.Name()))
	}

	d := Def{
		Name:     name,
		SQL:      sql,
		Base:     it.Core(),
		BaseName: it.Name(),
		Filter:   filter,
		Groups:   agg.Groups,
		Aggs:     agg.Aggs,
	}

	// Map the projection onto the state layout (groups then aggs).
	aggSchema := agg.Schema()
	if proj == nil {
		d.Out = make([]int, aggSchema.Len())
		fields := make([]sqltypes.Field, aggSchema.Len())
		for i, short := range aggSchema.ShortNames() {
			d.Out[i] = i
			f := aggSchema.Field(i)
			fields[i] = sqltypes.Field{Name: short, Type: f.Type, Nullable: true}
		}
		d.Schema = sqltypes.NewSchema(fields...)
	} else {
		d.Out = make([]int, len(proj.Exprs))
		fields := make([]sqltypes.Field, len(proj.Exprs))
		for i, e := range proj.Exprs {
			name := plan.OutputName(e, i)
			b := unwrapBound(e)
			if b == nil || b.Ordinal < 0 || b.Ordinal >= aggSchema.Len() {
				return bad(fmt.Sprintf("select item %q is not a plain group column or aggregate", e))
			}
			d.Out[i] = b.Ordinal
			fields[i] = sqltypes.Field{Name: name, Type: b.T, Nullable: true}
		}
		d.Schema = sqltypes.NewSchema(fields...)
	}
	d.finish()
	if err := d.validate(); err != nil {
		return Def{}, err
	}
	return d, nil
}

func unwrapBound(e expr.Expr) *expr.Bound {
	switch t := e.(type) {
	case *expr.Bound:
		return t
	case *expr.Alias:
		return unwrapBound(t.E)
	}
	return nil
}
