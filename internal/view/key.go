package view

import (
	"encoding/binary"
	"math"

	"indexeddf/internal/sqltypes"
)

// appendKey appends a self-delimiting encoding of v to dst, used as the
// group-state map key. Same grouping semantics as the execution engine's
// hash aggregate: values group by (type, payload), NULLs group together.
func appendKey(dst []byte, v sqltypes.Value) []byte {
	dst = append(dst, byte(v.T))
	switch v.T {
	case sqltypes.Unknown: // NULL: tag only
	case sqltypes.Float64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
		dst = append(dst, b[:]...)
	case sqltypes.String:
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(len(v.S)))
		dst = append(dst, b[:]...)
		dst = append(dst, v.S...)
	default: // Bool, Int32, Int64, Timestamp share the integer payload
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v.I))
		dst = append(dst, b[:]...)
	}
	return dst
}
