// Package view implements incremental materialized views: a view is a
// registered aggregate query (filter + GROUP BY + SUM/COUNT/MIN/MAX/AVG)
// over an IndexedTable whose per-group accumulator state is maintained
// from the table's change log instead of rescanned per query (the
// DBToaster-style delta maintenance the paper's low-latency serving story
// needs once the same aggregate shapes are issued over and over against a
// mutating table).
//
// Consistency contract: a refresh pins one base snapshot and advances the
// view to exactly that snapshot's per-partition change marks — folding the
// logged delta for SUM/COUNT/AVG, and recomputing any group whose MIN/MAX
// was invalidated by a delete from that same snapshot. Because the change
// log and the snapshot content are pinned under the same partition locks
// (see internal/core), a refresh can never double-count an in-flight
// append. When the log has a gap (compaction, pruning beyond the cursor),
// the view falls back to a full recompute from the snapshot.
package view

import (
	"fmt"
	"sync"

	"indexeddf/internal/catalog"
	"indexeddf/internal/core"
	"indexeddf/internal/expr"
	"indexeddf/internal/faultpoint"
	"indexeddf/internal/sqltypes"
)

// View is one incrementally maintained materialized aggregate. It
// implements catalog.MaterializedView (and therefore catalog.Table).
type View struct {
	def Def
	reg *catalog.ViewRegistry // for post-refresh log pruning; may be nil

	mu      sync.Mutex
	state   map[string]*group
	order   []*group // insertion order; removed groups are nilled out
	dead    int      // nil slots in order (compacted when dominant)
	cursors []int64  // per-partition change-log sequence folded up to
	version int64    // base-table version the state reflects
	stats   Stats
	// needRecompute forces the next refresh to rebuild from a snapshot: a
	// refresh that failed after it started mutating accumulator state left
	// the state partially folded with unadvanced cursors, and retrying the
	// delta would double-fold it. The failed refresh surfaces its error to
	// the caller; the view stays consistently answerable because the next
	// access recomputes before serving.
	needRecompute bool
}

// Stats counts maintenance work (observability and tests).
type Stats struct {
	// Refreshes is the number of Refresh calls that did any work.
	Refreshes int64
	// FullRecomputes counts state rebuilds from a snapshot (initial build,
	// change-log gaps, explicit Recompute).
	FullRecomputes int64
	// DeltaRows is the number of logged rows folded incrementally.
	DeltaRows int64
	// GroupRecomputes counts dirty-group rebuilds (MIN/MAX deletes).
	GroupRecomputes int64
}

// group is one GROUP BY key's accumulator state.
type group struct {
	keys sqltypes.Row // evaluated group expressions
	accs []acc
	rows int64 // rows passing the filter currently in the group
	pos  int   // index into order
}

// acc is one aggregate's accumulator (same layout as the execution
// engine's hash aggregate, so emitted values match exactly).
type acc struct {
	count int64
	sumI  int64
	sumF  float64
	min   sqltypes.Value
	max   sqltypes.Value
}

// New builds an (empty) view over def and performs the initial
// computation: it enables change capture on the base table FIRST and then
// recomputes from a snapshot, so every later mutation is either in the
// snapshot or in the log at a sequence past the snapshot's marks.
func New(def Def, reg *catalog.ViewRegistry) (*View, error) {
	if err := def.validate(); err != nil {
		return nil, err
	}
	def.finish() // idempotent; covers defs built without DefFromPlan
	v := &View{def: def, reg: reg}
	def.Base.EnableChangeCapture()
	if err := v.Recompute(); err != nil {
		return nil, err
	}
	return v, nil
}

// Def returns the view definition.
func (v *View) Def() Def { return v.def }

// Name implements catalog.Table.
func (v *View) Name() string { return v.def.Name }

// Schema implements catalog.Table: the visible schema in SELECT-list
// order.
func (v *View) Schema() *sqltypes.Schema { return v.def.Schema }

// RowCount implements catalog.Table.
func (v *View) RowCount() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.def.Groups) == 0 {
		return 1
	}
	return int64(len(v.state))
}

// Base implements catalog.MaterializedView.
func (v *View) Base() *core.IndexedTable { return v.def.Base }

// BaseName implements catalog.MaterializedView.
func (v *View) BaseName() string { return v.def.BaseName }

// Definition implements catalog.MaterializedView.
func (v *View) Definition() string { return v.def.SQL }

// RefreshedVersion implements catalog.MaterializedView.
func (v *View) RefreshedVersion() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.version
}

// ChangeCursors implements catalog.MaterializedView.
func (v *View) ChangeCursors() []int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]int64, len(v.cursors))
	copy(out, v.cursors)
	return out
}

// StateSchema implements catalog.MaterializedView.
func (v *View) StateSchema() *sqltypes.Schema { return v.def.StateSchema }

// OutCols implements catalog.MaterializedView.
func (v *View) OutCols() []int { return v.def.Out }

// Stats returns maintenance counters.
func (v *View) Stats() Stats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stats
}

// ---------------------------------------------------------------------------
// Maintenance

// Refresh implements catalog.MaterializedView: fold the delta since the
// last refresh, or fully recompute on a change-log gap.
func (v *View) Refresh() error {
	if err := v.refresh(); err != nil {
		return err
	}
	v.prune()
	return nil
}

// refresh runs refreshLocked under the state lock. The unlock is deferred
// so a panicking refresh (a fold bug, an injected fault) cannot strand the
// lock and deadlock every later query over the view.
func (v *View) refresh() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.refreshLocked()
}

// Recompute implements catalog.MaterializedView: rebuild from a fresh
// snapshot unconditionally.
func (v *View) Recompute() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.recomputeLocked(v.def.Base.Snapshot())
}

func (v *View) refreshLocked() error {
	// A panic anywhere in the refresh may have left accumulator state
	// half-mutated: flag the recompute fallback before rethrowing.
	defer func() {
		if r := recover(); r != nil {
			v.needRecompute = true
			panic(r)
		}
	}()
	base := v.def.Base
	snap := base.Snapshot()
	if v.needRecompute {
		return v.recomputeLocked(snap)
	}
	n := base.NumPartitions()
	if len(v.cursors) != n {
		return v.recomputeLocked(snap)
	}

	// Collect the per-partition delta pinned by the snapshot's marks.
	perPart := make([][]core.Change, n)
	total := 0
	for p := 0; p < n; p++ {
		mark := snap.ChangeMark(p)
		if mark < 0 { // capture off: should not happen for a live view
			return v.recomputeLocked(snap)
		}
		changes, ok := base.ChangesBetween(p, v.cursors[p], mark)
		if !ok {
			// Gap: compaction or pruning overtook our cursor.
			return v.recomputeLocked(snap)
		}
		perPart[p] = changes
		total += len(changes)
	}
	if total == 0 && snap.Version() == v.version {
		return nil
	}

	// Past this point the fold mutates accumulator state: any failure —
	// injected or genuine — must force a full recompute on the next
	// refresh, or retrying would double-fold the delta.
	if err := faultpoint.Hit(faultpoint.ViewRefresh); err != nil {
		v.needRecompute = true
		return fmt.Errorf("view %q refresh: %w", v.def.Name, err)
	}
	dirty := map[string]bool{}
	for p := 0; p < n; p++ {
		for _, ch := range perPart[p] {
			if err := v.foldLocked(ch, dirty); err != nil {
				v.needRecompute = true
				return err
			}
		}
	}
	if len(dirty) > 0 {
		if err := v.recomputeGroupsLocked(snap, dirty); err != nil {
			v.needRecompute = true
			return err
		}
	}
	for p := 0; p < n; p++ {
		v.cursors[p] = snap.ChangeMark(p)
	}
	v.version = snap.Version()
	v.stats.Refreshes++
	return nil
}

// foldLocked applies one change record to the accumulator state.
func (v *View) foldLocked(ch core.Change, dirty map[string]bool) error {
	sub := ch.Kind == core.ChangeDelete
	for _, row := range ch.Rows {
		keep, err := v.passesFilter(row)
		if err != nil {
			return err
		}
		if !keep {
			continue
		}
		key, keys, err := v.groupKey(row)
		if err != nil {
			return err
		}
		g := v.state[key]
		if g == nil {
			if sub {
				// Deleting from an unseen group: only possible if the
				// group was removed earlier in this batch and the log is
				// self-consistent; recompute to be safe.
				dirty[key] = true
				continue
			}
			g = v.addGroup(key, keys)
		}
		if sub {
			g.rows--
			if err := v.subRow(g, row, key, dirty); err != nil {
				return err
			}
			if g.rows <= 0 && len(v.def.Groups) > 0 && !dirty[key] {
				v.removeGroup(key, g)
			}
		} else {
			g.rows++
			if err := v.addRow(g, row); err != nil {
				return err
			}
		}
		v.stats.DeltaRows++
	}
	return nil
}

// addRow folds a row into the group's accumulators (append).
func (v *View) addRow(g *group, row sqltypes.Row) error {
	for i, a := range v.def.Aggs {
		ac := &g.accs[i]
		if a.Func == expr.CountStarAgg {
			ac.count++
			continue
		}
		val, err := a.Arg.Eval(row)
		if err != nil {
			return err
		}
		if val.IsNull() {
			continue
		}
		switch a.Func {
		case expr.CountAgg:
			ac.count++
		case expr.SumAgg:
			ac.count++
			if a.ResultType() == sqltypes.Float64 {
				ac.sumF += val.Float64Val()
			} else {
				ac.sumI += val.Int64Val()
			}
		case expr.AvgAgg:
			ac.count++
			ac.sumF += val.Float64Val()
		case expr.MinAgg:
			if ac.min.IsNull() || sqltypes.Compare(val, ac.min) < 0 {
				ac.min = val
			}
		case expr.MaxAgg:
			if ac.max.IsNull() || sqltypes.Compare(val, ac.max) > 0 {
				ac.max = val
			}
		}
	}
	return nil
}

// subRow retracts a deleted row. SUM/COUNT/AVG invert arithmetically;
// MIN/MAX cannot (the runner-up is unknown), so a delete that ties the
// current extreme marks the group dirty for recompute from the snapshot.
func (v *View) subRow(g *group, row sqltypes.Row, key string, dirty map[string]bool) error {
	for i, a := range v.def.Aggs {
		ac := &g.accs[i]
		if a.Func == expr.CountStarAgg {
			ac.count--
			continue
		}
		val, err := a.Arg.Eval(row)
		if err != nil {
			return err
		}
		if val.IsNull() {
			continue
		}
		switch a.Func {
		case expr.CountAgg:
			ac.count--
		case expr.SumAgg:
			ac.count--
			if a.ResultType() == sqltypes.Float64 {
				ac.sumF -= val.Float64Val()
			} else {
				ac.sumI -= val.Int64Val()
			}
		case expr.AvgAgg:
			ac.count--
			ac.sumF -= val.Float64Val()
		case expr.MinAgg:
			if ac.min.IsNull() || sqltypes.Compare(val, ac.min) <= 0 {
				dirty[key] = true
			}
		case expr.MaxAgg:
			if ac.max.IsNull() || sqltypes.Compare(val, ac.max) >= 0 {
				dirty[key] = true
			}
		}
	}
	return nil
}

// recomputeGroupsLocked rebuilds the dirty groups' full accumulator state
// from snap (one scan, accumulating only rows whose group key is dirty).
func (v *View) recomputeGroupsLocked(snap *core.Snapshot, dirty map[string]bool) error {
	fresh := map[string]*group{}
	err := v.scanFold(snap, func(key string, keys sqltypes.Row, row sqltypes.Row) (bool, error) {
		if !dirty[key] {
			return false, nil
		}
		g := fresh[key]
		if g == nil {
			g = &group{keys: keys.Clone(), accs: make([]acc, len(v.def.Aggs))}
			fresh[key] = g
		}
		g.rows++
		return true, v.addRow(g, row)
	})
	if err != nil {
		return err
	}
	for key := range dirty {
		old := v.state[key]
		g := fresh[key]
		switch {
		case g == nil && old != nil:
			v.removeGroup(key, old)
		case g != nil && old != nil:
			old.accs = g.accs
			old.rows = g.rows
		case g != nil && old == nil:
			ng := v.addGroup(key, g.keys)
			ng.accs = g.accs
			ng.rows = g.rows
		}
		v.stats.GroupRecomputes++
	}
	return nil
}

// recomputeLocked rebuilds the whole state from snap and re-anchors the
// cursors at snap's change marks.
func (v *View) recomputeLocked(snap *core.Snapshot) error {
	// Pessimistically sticky: cleared only when the rebuild completes, so a
	// recompute that itself fails mid-scan forces another one.
	v.needRecompute = true
	v.state = map[string]*group{}
	v.order = v.order[:0]
	err := v.scanFold(snap, func(key string, keys sqltypes.Row, row sqltypes.Row) (bool, error) {
		g := v.state[key]
		if g == nil {
			g = v.addGroup(key, keys)
		}
		g.rows++
		return true, v.addRow(g, row)
	})
	if err != nil {
		return err
	}
	n := v.def.Base.NumPartitions()
	if len(v.cursors) != n {
		v.cursors = make([]int64, n)
	}
	for p := 0; p < n; p++ {
		mark := snap.ChangeMark(p)
		if mark < 0 {
			mark = 0
		}
		v.cursors[p] = mark
	}
	v.version = snap.Version()
	v.stats.FullRecomputes++
	v.stats.Refreshes++
	v.needRecompute = false
	return nil
}

// scanFold streams every filtered base row with its group key to fn. fn's
// first result reports whether the row was consumed (the key scratch row
// must then not be reused for that group's keys — callers clone).
func (v *View) scanFold(snap *core.Snapshot, fn func(key string, keys sqltypes.Row, row sqltypes.Row) (bool, error)) error {
	for p := 0; p < snap.NumPartitions(); p++ {
		var innerErr error
		err := snap.ScanPartition(p, func(row sqltypes.Row) bool {
			keep, err := v.passesFilter(row)
			if err != nil {
				innerErr = err
				return false
			}
			if !keep {
				return true
			}
			key, keys, err := v.groupKey(row)
			if err != nil {
				innerErr = err
				return false
			}
			if _, err := fn(key, keys, row); err != nil {
				innerErr = err
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if innerErr != nil {
			return innerErr
		}
	}
	return nil
}

func (v *View) passesFilter(row sqltypes.Row) (bool, error) {
	if v.def.Filter == nil {
		return true, nil
	}
	return expr.EvalPredicate(v.def.Filter, row)
}

// groupKey evaluates the group expressions and encodes them as a map key.
func (v *View) groupKey(row sqltypes.Row) (string, sqltypes.Row, error) {
	if len(v.def.Groups) == 0 {
		return "", nil, nil
	}
	keys := make(sqltypes.Row, len(v.def.Groups))
	var buf []byte
	for i, g := range v.def.Groups {
		val, err := g.Eval(row)
		if err != nil {
			return "", nil, err
		}
		keys[i] = val
		buf = appendKey(buf, val)
	}
	return string(buf), keys, nil
}

func (v *View) addGroup(key string, keys sqltypes.Row) *group {
	g := &group{keys: keys, accs: make([]acc, len(v.def.Aggs)), pos: len(v.order)}
	if v.state == nil {
		v.state = map[string]*group{}
	}
	v.state[key] = g
	v.order = append(v.order, g)
	return g
}

func (v *View) removeGroup(key string, g *group) {
	delete(v.state, key)
	if g.pos >= 0 && g.pos < len(v.order) && v.order[g.pos] == g {
		v.order[g.pos] = nil
		v.dead++
	}
	// Reclaim dead slots when they dominate, so group churn (keys created
	// and deleted over and over) cannot grow order without bound.
	if v.dead > 64 && v.dead > len(v.order)/2 {
		live := v.order[:0]
		for _, og := range v.order {
			if og != nil {
				og.pos = len(live)
				live = append(live, og)
			}
		}
		for i := len(live); i < len(v.order); i++ {
			v.order[i] = nil // release trailing references
		}
		v.order = live
		v.dead = 0
	}
}

// prune lets the registry drop change records every view has folded. Must
// be called without holding v.mu (the registry reads every view's
// cursors, including ours).
func (v *View) prune() {
	if v.reg != nil {
		v.reg.PruneBaseLog(v.def.Base)
	}
}

// ---------------------------------------------------------------------------
// State emission

// RefreshRows implements catalog.MaterializedView: refresh, then
// materialize the state rows (internal layout: groups then aggregates).
func (v *View) RefreshRows() ([]sqltypes.Row, error) {
	rows, err := v.refreshRows()
	if err != nil {
		return nil, err
	}
	v.prune()
	return rows, nil
}

func (v *View) refreshRows() ([]sqltypes.Row, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if err := v.refreshLocked(); err != nil {
		return nil, err
	}
	return v.rowsLocked(), nil
}

// Rows materializes the current state without refreshing.
func (v *View) Rows() []sqltypes.Row {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.rowsLocked()
}

func (v *View) rowsLocked() []sqltypes.Row {
	nAggs := len(v.def.Aggs)
	if len(v.def.Groups) == 0 {
		// Global aggregate: exactly one row, even over an empty table.
		// Looked up by the canonical empty key — the group's order slot
		// moves when it is removed and re-created.
		g := v.state[""]
		if g == nil {
			g = &group{accs: make([]acc, nAggs)}
		}
		return []sqltypes.Row{v.emit(g)}
	}
	out := make([]sqltypes.Row, 0, len(v.state))
	for _, g := range v.order {
		if g == nil || g.rows <= 0 {
			continue
		}
		out = append(out, v.emit(g))
	}
	return out
}

// emit renders one group as a state row, matching the execution engine's
// final-aggregate semantics (NULL SUM/AVG/MIN/MAX over no non-null input).
func (v *View) emit(g *group) sqltypes.Row {
	out := make(sqltypes.Row, 0, len(g.keys)+len(v.def.Aggs))
	out = append(out, g.keys...)
	for i, a := range v.def.Aggs {
		ac := g.accs[i]
		switch a.Func {
		case expr.CountAgg, expr.CountStarAgg:
			out = append(out, sqltypes.NewInt64(ac.count))
		case expr.SumAgg:
			if ac.count == 0 {
				out = append(out, sqltypes.Null)
			} else if a.ResultType() == sqltypes.Float64 {
				out = append(out, sqltypes.NewFloat64(ac.sumF))
			} else {
				out = append(out, sqltypes.NewInt64(ac.sumI))
			}
		case expr.AvgAgg:
			if ac.count == 0 {
				out = append(out, sqltypes.Null)
			} else {
				out = append(out, sqltypes.NewFloat64(ac.sumF/float64(ac.count)))
			}
		case expr.MinAgg:
			out = append(out, ac.min)
		case expr.MaxAgg:
			out = append(out, ac.max)
		}
	}
	return out
}

// MatchesAggregate implements catalog.MaterializedView; see Def.Matches.
func (v *View) MatchesAggregate(base *core.IndexedTable, filter expr.Expr, groups []expr.Expr, aggs []expr.Agg) ([]int, bool) {
	return v.def.Matches(base, filter, groups, aggs)
}

// String renders the view for logs.
func (v *View) String() string {
	return fmt.Sprintf("MaterializedView %s over %s (version %d)", v.def.Name, v.def.BaseName, v.RefreshedVersion())
}
