package view

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"indexeddf/internal/catalog"
	"indexeddf/internal/core"
	"indexeddf/internal/expr"
	"indexeddf/internal/sqltypes"
)

// Test fixture: table (k BIGINT key, grp BIGINT, val BIGINT), view
// SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val), AVG(val) GROUP BY grp.

func testSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "k", Type: sqltypes.Int64},
		sqltypes.Field{Name: "grp", Type: sqltypes.Int64},
		sqltypes.Field{Name: "val", Type: sqltypes.Int64, Nullable: true},
	)
}

func row(k, grp int64, val sqltypes.Value) sqltypes.Row {
	return sqltypes.Row{sqltypes.NewInt64(k), sqltypes.NewInt64(grp), val}
}

func i64(v int64) sqltypes.Value { return sqltypes.NewInt64(v) }

func testDef(base *core.IndexedTable, filter expr.Expr) Def {
	val := expr.B(2, sqltypes.Int64, "val")
	return Def{
		Name:     "v",
		SQL:      "SELECT ...",
		Base:     base,
		BaseName: "t",
		Filter:   filter,
		Groups:   []expr.Expr{expr.B(1, sqltypes.Int64, "grp")},
		Aggs: []expr.Agg{
			{Func: expr.CountStarAgg, Name: "cnt"},
			{Func: expr.SumAgg, Arg: val, Name: "sum"},
			{Func: expr.MinAgg, Arg: val, Name: "min"},
			{Func: expr.MaxAgg, Arg: val, Name: "max"},
			{Func: expr.AvgAgg, Arg: val, Name: "avg"},
		},
	}
}

func newBase(t *testing.T) *core.IndexedTable {
	t.Helper()
	base, err := core.NewIndexedTable(testSchema(), 0, core.Options{NumPartitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	return base
}

// oracle recomputes the view's expected rows from a live snapshot with an
// independent implementation.
func oracle(t *testing.T, base *core.IndexedTable, filter expr.Expr) map[int64][]sqltypes.Value {
	t.Helper()
	type st struct {
		n, sum, nonNull int64
		min, max        sqltypes.Value
	}
	groups := map[int64]*st{}
	snap := base.Snapshot()
	for p := 0; p < snap.NumPartitions(); p++ {
		err := snap.ScanPartition(p, func(r sqltypes.Row) bool {
			if filter != nil {
				keep, err := expr.EvalPredicate(filter, r)
				if err != nil {
					t.Fatal(err)
				}
				if !keep {
					return true
				}
			}
			g := r[1].Int64Val()
			s := groups[g]
			if s == nil {
				s = &st{}
				groups[g] = s
			}
			s.n++
			if !r[2].IsNull() {
				v := r[2].Int64Val()
				s.nonNull++
				s.sum += v
				if s.min.IsNull() || v < s.min.Int64Val() {
					s.min = r[2]
				}
				if s.max.IsNull() || v > s.max.Int64Val() {
					s.max = r[2]
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	out := map[int64][]sqltypes.Value{}
	for g, s := range groups {
		sum, avg := sqltypes.Null, sqltypes.Null
		if s.nonNull > 0 {
			sum = sqltypes.NewInt64(s.sum)
			avg = sqltypes.NewFloat64(float64(s.sum) / float64(s.nonNull))
		}
		out[g] = []sqltypes.Value{sqltypes.NewInt64(s.n), sum, s.min, s.max, avg}
	}
	return out
}

func checkAgainstOracle(t *testing.T, v *View, base *core.IndexedTable, filter expr.Expr) {
	t.Helper()
	want := oracle(t, base, filter)
	rows, err := v.RefreshRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(want) {
		t.Fatalf("view has %d groups, oracle %d", len(rows), len(want))
	}
	for _, r := range rows {
		g := r[0].Int64Val()
		exp, ok := want[g]
		if !ok {
			t.Fatalf("unexpected group %d", g)
		}
		for i, w := range exp {
			got := r[1+i]
			if w.T == sqltypes.Float64 {
				if got.IsNull() || math.Abs(got.Float64Val()-w.Float64Val()) > 1e-9 {
					t.Fatalf("group %d agg %d = %v, want %v", g, i, got, w)
				}
				continue
			}
			if !sqltypes.Equal(got, w) && !(got.IsNull() && w.IsNull()) {
				t.Fatalf("group %d agg %d = %v, want %v", g, i, got, w)
			}
		}
	}
}

func TestViewInitialBuildAndDeltaAppend(t *testing.T) {
	base := newBase(t)
	for i := int64(0); i < 50; i++ {
		if err := base.Append([]sqltypes.Row{row(i, i%5, i64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := New(testDef(base, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, v, base, nil)
	if v.Stats().FullRecomputes != 1 {
		t.Fatalf("full recomputes = %d after build", v.Stats().FullRecomputes)
	}

	// Appends fold incrementally: no further full recomputes.
	for i := int64(50); i < 80; i++ {
		if err := base.Append([]sqltypes.Row{row(i, i%7, i64(i*2))}); err != nil {
			t.Fatal(err)
		}
	}
	checkAgainstOracle(t, v, base, nil)
	st := v.Stats()
	if st.FullRecomputes != 1 {
		t.Fatalf("full recomputes = %d after delta refresh, want 1", st.FullRecomputes)
	}
	if st.DeltaRows != 30 {
		t.Fatalf("delta rows folded = %d, want 30", st.DeltaRows)
	}
}

func TestViewDeleteArithmeticAggs(t *testing.T) {
	base := newBase(t)
	for i := int64(0); i < 20; i++ {
		if err := base.Append([]sqltypes.Row{row(i, i%3, i64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := New(testDef(base, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{3, 7, 11} {
		if !base.Delete(i64(k)) {
			t.Fatalf("delete %d missed", k)
		}
	}
	checkAgainstOracle(t, v, base, nil)
}

func TestViewMinMaxDeleteRecomputesGroup(t *testing.T) {
	base := newBase(t)
	// Group 0 holds vals 0, 10, 20, 30; key == val/10.
	for i := int64(0); i < 4; i++ {
		if err := base.Append([]sqltypes.Row{row(i, 0, i64(i*10))}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := New(testDef(base, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Delete the current max: MIN/MAX must fall back to group recompute.
	if !base.Delete(i64(3)) {
		t.Fatal("delete missed")
	}
	checkAgainstOracle(t, v, base, nil)
	if v.Stats().GroupRecomputes == 0 {
		t.Fatal("expected a dirty-group recompute for the deleted max")
	}
	if v.Stats().FullRecomputes != 1 {
		t.Fatalf("full recomputes = %d, want only the initial build", v.Stats().FullRecomputes)
	}
	// Delete a middle value: arithmetic aggs adjust, extremes recompute.
	if !base.Delete(i64(1)) {
		t.Fatal("delete missed")
	}
	checkAgainstOracle(t, v, base, nil)
}

func TestViewGroupDisappearsAndReturns(t *testing.T) {
	base := newBase(t)
	if err := base.Append([]sqltypes.Row{row(1, 42, i64(5))}); err != nil {
		t.Fatal(err)
	}
	v, err := New(testDef(base, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	base.Delete(i64(1))
	rows, err := v.RefreshRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("group should disappear, got %d rows", len(rows))
	}
	if err := base.Append([]sqltypes.Row{row(2, 42, i64(9))}); err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, v, base, nil)
}

func TestViewNullHandling(t *testing.T) {
	base := newBase(t)
	if err := base.Append([]sqltypes.Row{
		row(1, 0, sqltypes.Null),
		row(2, 0, sqltypes.Null),
		row(3, 1, i64(7)),
		row(4, 1, sqltypes.Null),
	}); err != nil {
		t.Fatal(err)
	}
	v, err := New(testDef(base, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, v, base, nil)
	base.Delete(i64(4)) // delete a null contribution
	checkAgainstOracle(t, v, base, nil)
}

func TestViewWithFilter(t *testing.T) {
	base := newBase(t)
	filter := expr.NewCmp(expr.Gt, expr.B(2, sqltypes.Int64, "val"), expr.LitInt64(10))
	for i := int64(0); i < 30; i++ {
		if err := base.Append([]sqltypes.Row{row(i, i%4, i64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := New(testDef(base, filter), nil)
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstOracle(t, v, base, filter)
	// Deletes of filtered-out rows must not disturb state.
	base.Delete(i64(5))
	base.Delete(i64(25))
	checkAgainstOracle(t, v, base, filter)
}

func TestViewGlobalAggregate(t *testing.T) {
	base := newBase(t)
	def := testDef(base, nil)
	def.Groups = nil
	v, err := New(def, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Empty table: exactly one row, COUNT 0, NULL everything else.
	rows, err := v.RefreshRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int64Val() != 0 || !rows[0][1].IsNull() {
		t.Fatalf("global agg over empty = %v", rows)
	}
	for i := int64(0); i < 10; i++ {
		if err := base.Append([]sqltypes.Row{row(i, 0, i64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	rows, err = v.RefreshRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int64Val() != 10 || rows[0][1].Int64Val() != 45 {
		t.Fatalf("global agg = %v", rows)
	}
}

func TestViewGlobalAggSurvivesEmptyThenRefill(t *testing.T) {
	// Regression: a MIN/MAX delete over a global-aggregate view emptied
	// the table (dirty recompute removed the single group); re-appends
	// must revive it — the emitted row follows the state, not a stale
	// order slot.
	base := newBase(t)
	def := testDef(base, nil)
	def.Groups = nil
	if err := base.Append([]sqltypes.Row{row(1, 0, i64(5))}); err != nil {
		t.Fatal(err)
	}
	v, err := New(def, nil)
	if err != nil {
		t.Fatal(err)
	}
	base.Delete(i64(1)) // MIN/MAX dirty; recompute over empty snapshot
	rows, err := v.RefreshRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int64Val() != 0 {
		t.Fatalf("empty global agg = %v", rows)
	}
	if err := base.Append([]sqltypes.Row{row(2, 0, i64(9))}); err != nil {
		t.Fatal(err)
	}
	rows, err = v.RefreshRows()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int64Val() != 1 || rows[0][2].Int64Val() != 9 {
		t.Fatalf("refilled global agg = %v (count, min stale?)", rows)
	}
}

func TestViewGroupChurnBoundsOrder(t *testing.T) {
	// Regression: groups created and deleted over and over must not grow
	// the internal emission order without bound.
	base := newBase(t)
	v, err := New(testDef(base, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 2000; i++ {
		if err := base.Append([]sqltypes.Row{row(i, i, i64(i))}); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			base.Delete(i64(i)) // kill the group again
		}
		if i%100 == 99 {
			if _, err := v.RefreshRows(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := v.RefreshRows(); err != nil {
		t.Fatal(err)
	}
	v.mu.Lock()
	orderLen, liveGroups := len(v.order), len(v.state)
	v.mu.Unlock()
	if orderLen > 2*liveGroups+128 {
		t.Fatalf("order grew to %d slots for %d live groups", orderLen, liveGroups)
	}
	checkAgainstOracle(t, v, base, nil)
}

func TestViewCompactForcesRecompute(t *testing.T) {
	base := newBase(t)
	for i := int64(0); i < 10; i++ {
		if err := base.Append([]sqltypes.Row{row(i%3, i%3, i64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := New(testDef(base, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := base.Compact(true); err != nil { // keep newest row per key
		t.Fatal(err)
	}
	checkAgainstOracle(t, v, base, nil)
	if v.Stats().FullRecomputes < 2 {
		t.Fatalf("full recomputes = %d, compact must force a rebuild", v.Stats().FullRecomputes)
	}
	// And delta maintenance works again after the re-anchor.
	if err := base.Append([]sqltypes.Row{row(99, 9, i64(99))}); err != nil {
		t.Fatal(err)
	}
	before := v.Stats().FullRecomputes
	checkAgainstOracle(t, v, base, nil)
	if v.Stats().FullRecomputes != before {
		t.Fatal("post-compact append should fold incrementally")
	}
}

func TestViewMatchesCanonical(t *testing.T) {
	base := newBase(t)
	v, err := New(testDef(base, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same shape, different display names (alias-insensitive).
	groups := []expr.Expr{expr.B(1, sqltypes.Int64, "t.grp")}
	aggs := []expr.Agg{
		{Func: expr.SumAgg, Arg: expr.B(2, sqltypes.Int64, "t.val")},
		{Func: expr.CountStarAgg},
	}
	cols, ok := v.MatchesAggregate(base, nil, groups, aggs)
	if !ok {
		t.Fatal("expected match")
	}
	// State layout: grp, cnt, sum, min, max, avg → want [0 2 1].
	if fmt.Sprint(cols) != "[0 2 1]" {
		t.Fatalf("cols = %v", cols)
	}
	// Different ordinal: no match.
	if _, ok := v.MatchesAggregate(base, nil, []expr.Expr{expr.B(2, sqltypes.Int64, "grp")}, nil); ok {
		t.Fatal("group on different column must not match")
	}
	// Unknown aggregate argument: no match.
	if _, ok := v.MatchesAggregate(base, nil, groups, []expr.Agg{
		{Func: expr.SumAgg, Arg: expr.B(1, sqltypes.Int64, "grp")},
	}); ok {
		t.Fatal("SUM over a different column must not match")
	}
	// Filter mismatch: no match.
	f := expr.NewCmp(expr.Gt, expr.B(2, sqltypes.Int64, "val"), expr.LitInt64(1))
	if _, ok := v.MatchesAggregate(base, f, groups, aggs); ok {
		t.Fatal("filtered query must not match unfiltered view")
	}
}

func TestViewLogPruning(t *testing.T) {
	base := newBase(t)
	reg := catalog.NewViewRegistry()
	v, err := New(testDef(base, nil), reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(v); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := base.Append([]sqltypes.Row{row(i, i%5, i64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := v.Refresh(); err != nil {
		t.Fatal(err)
	}
	if n := base.ChangeLogSize(); n != 0 {
		t.Fatalf("log retains %d records after refresh+prune", n)
	}
	checkAgainstOracle(t, v, base, nil)
}

func TestViewRowsSorted(t *testing.T) {
	// Deterministic emission order sanity: groups come out in first-seen
	// order; sorting them yields the oracle's key set.
	base := newBase(t)
	for i := int64(0); i < 30; i++ {
		if err := base.Append([]sqltypes.Row{row(i, i%6, i64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := New(testDef(base, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := v.RefreshRows()
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for _, r := range rows {
		got = append(got, r[0].Int64Val())
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if fmt.Sprint(got) != "[0 1 2 3 4 5]" {
		t.Fatalf("groups = %v", got)
	}
}
