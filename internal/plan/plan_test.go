package plan

import (
	"strings"
	"testing"

	"indexeddf/internal/catalog"
	"indexeddf/internal/expr"
	"indexeddf/internal/sqltypes"
)

func table(name string, n int) catalog.Table {
	schema := sqltypes.NewSchema(
		sqltypes.Field{Name: "id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "v", Type: sqltypes.String},
	)
	rows := make([]sqltypes.Row, n)
	for i := range rows {
		rows[i] = sqltypes.Row{sqltypes.NewInt64(int64(i)), sqltypes.NewString("x")}
	}
	return catalog.NewColumnTable(name, schema, [][]sqltypes.Row{rows})
}

func TestRelationSchemaQualified(t *testing.T) {
	r := NewRelation(table("t", 5), "")
	if r.Alias != "t" {
		t.Fatalf("default alias = %q", r.Alias)
	}
	if r.Schema().Field(0).Name != "t.id" {
		t.Fatalf("schema = %s", r.Schema())
	}
	r2 := NewRelation(table("t", 5), "a")
	if r2.Schema().Field(0).Name != "a.id" {
		t.Fatalf("aliased schema = %s", r2.Schema())
	}
	if r.Stats().Rows != 5 {
		t.Fatalf("stats = %+v", r.Stats())
	}
}

func TestProjectSchemaAndStats(t *testing.T) {
	rel := NewRelation(table("t", 100), "")
	// Unresolved exprs -> nil schema.
	p := NewProject([]expr.Expr{expr.C("id")}, rel)
	if p.Schema() != nil {
		t.Fatal("unresolved project has schema")
	}
	// Resolved.
	b := expr.B(0, sqltypes.Int64, "id")
	p2 := NewProject([]expr.Expr{expr.As(b, "renamed")}, rel)
	if p2.Schema().Field(0).Name != "renamed" || p2.Schema().Field(0).Type != sqltypes.Int64 {
		t.Fatalf("schema = %s", p2.Schema())
	}
	if p2.Stats().Rows != 100 {
		t.Fatalf("stats = %+v", p2.Stats())
	}
}

func TestFilterStatsSelectivity(t *testing.T) {
	rel := NewRelation(table("t", 1000), "")
	b := expr.B(0, sqltypes.Int64, "id")
	eq := NewFilter(expr.NewCmp(expr.Eq, b, expr.LitInt64(1)), rel)
	rng := NewFilter(expr.NewCmp(expr.Gt, b, expr.LitInt64(1)), rel)
	if eq.Stats().Rows >= rng.Stats().Rows {
		t.Fatalf("equality (%d) should be more selective than range (%d)",
			eq.Stats().Rows, rng.Stats().Rows)
	}
}

func TestJoinSchemaNullability(t *testing.T) {
	l := NewRelation(table("l", 10), "")
	r := NewRelation(table("r", 20), "")
	inner := NewJoin(InnerJoin, l, r, nil)
	if inner.Schema().Len() != 4 {
		t.Fatalf("join schema = %s", inner.Schema())
	}
	outer := NewJoin(LeftOuterJoin, l, r, nil)
	if !outer.Schema().Field(2).Nullable {
		t.Fatal("left outer join right side not nullable")
	}
	if inner.Stats().Rows != 20 {
		t.Fatalf("join stats = %+v", inner.Stats())
	}
}

func TestAggregateSchema(t *testing.T) {
	rel := NewRelation(table("t", 100), "")
	g := expr.B(1, sqltypes.String, "v")
	a := NewAggregate([]expr.Expr{g},
		[]expr.Agg{{Func: expr.CountStarAgg, Name: "cnt"}}, rel)
	s := a.Schema()
	if s.Len() != 2 || s.Field(0).Name != "v" || s.Field(1).Name != "cnt" ||
		s.Field(1).Type != sqltypes.Int64 {
		t.Fatalf("schema = %s", s)
	}
	if a.Stats().Rows != 10 {
		t.Fatalf("grouped stats = %+v", a.Stats())
	}
	global := NewAggregate(nil, []expr.Agg{{Func: expr.CountStarAgg}}, rel)
	if global.Stats().Rows != 1 {
		t.Fatalf("global agg stats = %+v", global.Stats())
	}
}

func TestLimitUnionValuesStats(t *testing.T) {
	rel := NewRelation(table("t", 100), "")
	l := NewLimit(7, rel)
	if l.Stats().Rows != 7 {
		t.Fatalf("limit stats = %+v", l.Stats())
	}
	u := NewUnion(rel, rel)
	if u.Stats().Rows != 200 || u.Schema().Len() != 2 {
		t.Fatalf("union: %+v %s", u.Stats(), u.Schema())
	}
	v := NewValues(rel.Schema(), []sqltypes.Row{{sqltypes.NewInt64(1), sqltypes.NewString("a")}})
	if v.Stats().Rows != 1 {
		t.Fatalf("values stats = %+v", v.Stats())
	}
}

func TestTreeStringAndTransform(t *testing.T) {
	rel := NewRelation(table("t", 10), "")
	b := expr.B(0, sqltypes.Int64, "id")
	p := NewLimit(5, NewFilter(expr.NewCmp(expr.Gt, b, expr.LitInt64(1)), rel))
	s := TreeString(p)
	for _, want := range []string{"Limit 5", "Filter", "Relation t"} {
		if !strings.Contains(s, want) {
			t.Fatalf("TreeString missing %q:\n%s", want, s)
		}
	}
	// Transform: replace the limit with its child.
	out, err := Transform(p, func(n Node) (Node, error) {
		if l, ok := n.(*Limit); ok {
			return l.Child, nil
		}
		return n, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out.(*Filter); !ok {
		t.Fatalf("Transform result = %T", out)
	}
}

func TestWithChildrenArityChecks(t *testing.T) {
	rel := NewRelation(table("t", 10), "")
	b := expr.B(0, sqltypes.Int64, "id")
	f := NewFilter(expr.NewCmp(expr.Gt, b, expr.LitInt64(1)), rel)
	if _, err := f.WithChildren(nil); err == nil {
		t.Fatal("filter with 0 children accepted")
	}
	if _, err := rel.WithChildren([]Node{rel}); err == nil {
		t.Fatal("relation with a child accepted")
	}
	j := NewJoin(InnerJoin, rel, rel, nil)
	if _, err := j.WithChildren([]Node{rel}); err == nil {
		t.Fatal("join with 1 child accepted")
	}
}

func TestOutputName(t *testing.T) {
	if OutputName(expr.As(expr.LitInt64(1), "x"), 0) != "x" {
		t.Fatal("alias name")
	}
	if OutputName(expr.B(0, sqltypes.Int64, "col"), 0) != "col" {
		t.Fatal("bound name")
	}
	if OutputName(expr.LitInt64(1), 3) != "col3" {
		t.Fatal("generated name")
	}
}
