package plan

import (
	"indexeddf/internal/expr"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/stats"
)

// Structural fallback selectivities, used when no column statistics are
// available. defaultSel matches the pre-statistics planner's guess for
// an arbitrary predicate; eqSel its guess for an equality.
const (
	defaultSel = 0.25
	eqSel      = 0.01
)

// EstimateSelectivity estimates the fraction of child rows a predicate
// keeps. With column statistics it uses NDV for equalities, range
// interpolation over [min,max] for inequalities, and null fractions
// for IS [NOT] NULL; conjunctions multiply, disjunctions add under
// independence. Without statistics it degrades to the structural
// defaults the planner used before statistics existed.
func EstimateSelectivity(cond expr.Expr, child Stats) float64 {
	return clampSel(estimateSel(cond, child))
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func estimateSel(e expr.Expr, child Stats) float64 {
	switch t := e.(type) {
	case *expr.Alias:
		return estimateSel(t.E, child)
	case *expr.Logic:
		l := estimateSel(t.L, child)
		r := estimateSel(t.R, child)
		if t.Op == expr.AndOp {
			return l * r
		}
		return l + r - l*r
	case *expr.Not:
		return 1 - estimateSel(t.E, child)
	case *expr.IsNull:
		b, ok := unwrapBoundExpr(t.E)
		if !ok {
			return defaultSel
		}
		cs := child.Col(b.Ordinal)
		if cs == nil || cs.Count == 0 {
			return defaultSel
		}
		frac := cs.NullFraction()
		if t.Negate {
			return 1 - frac
		}
		return frac
	case *expr.Literal:
		if t.V.T == sqltypes.Bool {
			if t.V.I != 0 {
				return 1
			}
			return 0
		}
		return defaultSel
	case *expr.Cmp:
		return estimateCmpSel(t, child)
	}
	return defaultSel
}

// estimateCmpSel estimates a comparison's selectivity. Only the
// column-versus-literal shape is modeled; everything else falls back.
func estimateCmpSel(c *expr.Cmp, child Stats) float64 {
	b, lit, op, ok := columnVsLiteral(c)
	if !ok {
		if c.Op == expr.Eq {
			return eqSel
		}
		return defaultSel
	}
	cs := child.Col(b.Ordinal)
	if cs == nil || cs.Count == 0 {
		if op == expr.Eq {
			return eqSel
		}
		return defaultSel
	}
	nonNullFrac := 1 - cs.NullFraction()
	switch op {
	case expr.Eq:
		if outsideRange(lit, cs) {
			return 0
		}
		if cs.NDV > 0 {
			return nonNullFrac / float64(cs.NDV)
		}
		return eqSel
	case expr.Ne:
		if outsideRange(lit, cs) {
			return nonNullFrac
		}
		if cs.NDV > 0 {
			return nonNullFrac * (1 - 1/float64(cs.NDV))
		}
		return nonNullFrac
	case expr.Lt, expr.Le, expr.Gt, expr.Ge:
		return rangeSel(op, lit, cs) * nonNullFrac
	}
	return defaultSel
}

// columnVsLiteral matches `col OP lit` or `lit OP col` (flipping the
// operator so the column is always on the left).
func columnVsLiteral(c *expr.Cmp) (*expr.Bound, sqltypes.Value, expr.CmpOp, bool) {
	if b, ok := unwrapBoundExpr(c.L); ok {
		if lit, ok := literalValue(c.R); ok {
			return b, lit, c.Op, true
		}
	}
	if b, ok := unwrapBoundExpr(c.R); ok {
		if lit, ok := literalValue(c.L); ok {
			return b, lit, flipCmp(c.Op), true
		}
	}
	return nil, sqltypes.Null, 0, false
}

func literalValue(e expr.Expr) (sqltypes.Value, bool) {
	if a, ok := e.(*expr.Alias); ok {
		e = a.E
	}
	l, ok := e.(*expr.Literal)
	if !ok || l.V.IsNull() {
		return sqltypes.Null, false
	}
	return l.V, true
}

func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.Lt:
		return expr.Gt
	case expr.Le:
		return expr.Ge
	case expr.Gt:
		return expr.Lt
	case expr.Ge:
		return expr.Le
	}
	return op
}

// outsideRange reports whether lit falls outside the column's observed
// [min,max]; comparisons across incompatible types report false.
func outsideRange(lit sqltypes.Value, cs *stats.ColumnStats) bool {
	if cs.Min.IsNull() || cs.Max.IsNull() || !typesComparable(lit, cs.Min) {
		return false
	}
	return sqltypes.Compare(lit, cs.Min) < 0 || sqltypes.Compare(lit, cs.Max) > 0
}

// typesComparable reports whether two values order meaningfully (numerics
// against numerics, same-type otherwise).
func typesComparable(a, b sqltypes.Value) bool {
	if a.T == b.T {
		return true
	}
	return isNumeric(a.T) && isNumeric(b.T)
}

func isNumeric(t sqltypes.Type) bool {
	switch t {
	case sqltypes.Int32, sqltypes.Int64, sqltypes.Float64, sqltypes.Timestamp, sqltypes.Bool:
		return true
	}
	return false
}

// rangeSel interpolates an inequality's selectivity over the column's
// numeric [min,max]. Non-numeric columns fall back to the default.
func rangeSel(op expr.CmpOp, lit sqltypes.Value, cs *stats.ColumnStats) float64 {
	if cs.Min.IsNull() || cs.Max.IsNull() ||
		!isNumeric(lit.T) || !isNumeric(cs.Min.T) || !isNumeric(cs.Max.T) {
		return defaultSel
	}
	lo, hi, v := numeric(cs.Min), numeric(cs.Max), numeric(lit)
	if hi <= lo {
		// Single-point range: the predicate either keeps or drops it.
		switch op {
		case expr.Lt:
			if lo < v {
				return 1
			}
		case expr.Le:
			if lo <= v {
				return 1
			}
		case expr.Gt:
			if lo > v {
				return 1
			}
		case expr.Ge:
			if lo >= v {
				return 1
			}
		}
		return 0
	}
	frac := (v - lo) / (hi - lo) // fraction of the range below v
	switch op {
	case expr.Lt, expr.Le:
		return clampSel(frac)
	default: // Gt, Ge
		return clampSel(1 - frac)
	}
}

func numeric(v sqltypes.Value) float64 {
	if v.T == sqltypes.Float64 {
		return v.F
	}
	return float64(v.I)
}
