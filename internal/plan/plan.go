// Package plan defines the logical query plan — the abstract representation
// Catalyst-style optimization works on. Plans are built unresolved (column
// names as strings), then the analyzer in internal/opt binds expressions to
// ordinals and computes schemas.
package plan

import (
	"fmt"
	"strings"

	"indexeddf/internal/catalog"
	"indexeddf/internal/expr"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/stats"
)

// Stats carries the cardinality estimate used by planning heuristics
// (broadcast thresholds, build-side selection) and, when the source
// tables collect statistics, per-output-column detail (min/max, null
// fraction, distinct counts) for selectivity estimation. Cols is nil
// when no statistics are available; entries may individually be nil
// for computed columns.
type Stats struct {
	Rows int64
	Cols []*stats.ColumnStats
}

// Col returns the statistics for output column i, or nil.
func (s Stats) Col(i int) *stats.ColumnStats {
	if i < 0 || i >= len(s.Cols) {
		return nil
	}
	return s.Cols[i]
}

// Node is a logical plan operator.
type Node interface {
	// Schema returns the node's output schema; nil until the plan is
	// analyzed (expression-bearing nodes need binding to know types).
	Schema() *sqltypes.Schema
	// Children returns input plans.
	Children() []Node
	// WithChildren rebuilds the node with new children (same arity).
	WithChildren(children []Node) (Node, error)
	// Stats estimates output cardinality.
	Stats() Stats
	fmt.Stringer
}

// ---------------------------------------------------------------------------
// Relation

// Relation scans a catalog table. Alias qualifies the output columns
// (defaulting to the table name) so joins can disambiguate.
type Relation struct {
	Table catalog.Table
	Alias string
}

// NewRelation builds a relation node.
func NewRelation(t catalog.Table, alias string) *Relation {
	if alias == "" {
		alias = t.Name()
	}
	return &Relation{Table: t, Alias: alias}
}

// Schema implements Node; columns are qualified by the alias.
func (r *Relation) Schema() *sqltypes.Schema { return r.Table.Schema().Qualify(r.Alias) }

// Children implements Node.
func (r *Relation) Children() []Node { return nil }

// WithChildren implements Node.
func (r *Relation) WithChildren(c []Node) (Node, error) {
	if len(c) != 0 {
		return nil, fmt.Errorf("plan: relation takes no children")
	}
	return r, nil
}

// Stats implements Node; when the catalog table maintains statistics
// (stats.Provider) the per-column detail rides along.
func (r *Relation) Stats() Stats {
	s := Stats{Rows: r.Table.RowCount()}
	if p, ok := r.Table.(stats.Provider); ok {
		s.Cols = p.ColumnStats()
	}
	return s
}

func (r *Relation) String() string {
	kind := "Relation"
	if _, ok := r.Table.(*catalog.IndexedTable); ok {
		kind = "IndexedRelation"
	}
	return fmt.Sprintf("%s %s as %s", kind, r.Table.Name(), r.Alias)
}

// ---------------------------------------------------------------------------
// Project

// Project computes expressions over its child.
type Project struct {
	Exprs  []expr.Expr
	Child  Node
	schema *sqltypes.Schema
}

// NewProject builds a projection.
func NewProject(exprs []expr.Expr, child Node) *Project {
	p := &Project{Exprs: exprs, Child: child}
	p.computeSchema()
	return p
}

func (p *Project) computeSchema() {
	for _, e := range p.Exprs {
		if !e.Resolved() {
			p.schema = nil
			return
		}
	}
	fields := make([]sqltypes.Field, len(p.Exprs))
	for i, e := range p.Exprs {
		fields[i] = sqltypes.Field{Name: OutputName(e, i), Type: e.Type(), Nullable: true}
	}
	p.schema = sqltypes.NewSchema(fields...)
}

// OutputName derives the column name an expression produces.
func OutputName(e expr.Expr, i int) string {
	switch t := e.(type) {
	case *expr.Alias:
		return t.Name
	case *expr.Bound:
		return t.Name
	case *expr.Col:
		return t.Name
	default:
		return fmt.Sprintf("col%d", i)
	}
}

// Schema implements Node.
func (p *Project) Schema() *sqltypes.Schema { return p.schema }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// WithChildren implements Node.
func (p *Project) WithChildren(c []Node) (Node, error) {
	if len(c) != 1 {
		return nil, fmt.Errorf("plan: project takes 1 child")
	}
	return NewProject(p.Exprs, c[0]), nil
}

// WithExprs rebuilds the projection with new expressions.
func (p *Project) WithExprs(exprs []expr.Expr) *Project { return NewProject(exprs, p.Child) }

// Stats implements Node; column detail is remapped through pass-through
// projections (bare or aliased column references).
func (p *Project) Stats() Stats {
	child := p.Child.Stats()
	out := Stats{Rows: child.Rows}
	if child.Cols != nil {
		out.Cols = make([]*stats.ColumnStats, len(p.Exprs))
		for i, e := range p.Exprs {
			if b, ok := unwrapBoundExpr(e); ok {
				out.Cols[i] = child.Col(b.Ordinal)
			}
		}
	}
	return out
}

// unwrapBoundExpr unwraps a bare or aliased bound column reference.
func unwrapBoundExpr(e expr.Expr) (*expr.Bound, bool) {
	if a, ok := e.(*expr.Alias); ok {
		e = a.E
	}
	b, ok := e.(*expr.Bound)
	return b, ok
}

func (p *Project) String() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project [" + strings.Join(parts, ", ") + "]"
}

// ---------------------------------------------------------------------------
// Filter

// Filter keeps rows satisfying Cond.
type Filter struct {
	Cond  expr.Expr
	Child Node
}

// NewFilter builds a filter.
func NewFilter(cond expr.Expr, child Node) *Filter { return &Filter{Cond: cond, Child: child} }

// Schema implements Node.
func (f *Filter) Schema() *sqltypes.Schema { return f.Child.Schema() }

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Child} }

// WithChildren implements Node.
func (f *Filter) WithChildren(c []Node) (Node, error) {
	if len(c) != 1 {
		return nil, fmt.Errorf("plan: filter takes 1 child")
	}
	return NewFilter(f.Cond, c[0]), nil
}

// Stats implements Node; selectivity comes from column statistics when
// the child carries them, falling back to structural defaults.
func (f *Filter) Stats() Stats {
	child := f.Child.Stats()
	sel := EstimateSelectivity(f.Cond, child)
	rows := int64(float64(child.Rows) * sel)
	if rows < 1 {
		rows = 1
	}
	// Column detail passes through: a filter narrows ranges in ways we
	// don't model, but min/max/NDV stay valid as upper bounds.
	return Stats{Rows: rows, Cols: child.Cols}
}

func (f *Filter) String() string { return fmt.Sprintf("Filter %s", f.Cond) }

// ---------------------------------------------------------------------------
// Join

// JoinType enumerates supported join types.
type JoinType uint8

// Join types.
const (
	InnerJoin JoinType = iota
	LeftOuterJoin
)

func (t JoinType) String() string {
	return [...]string{"Inner", "LeftOuter"}[t]
}

// Join combines two inputs on a condition (bound against the concatenated
// schema: left ordinals first).
type Join struct {
	Type        JoinType
	Left, Right Node
	Cond        expr.Expr // nil = cross join
}

// NewJoin builds a join node.
func NewJoin(t JoinType, left, right Node, cond expr.Expr) *Join {
	return &Join{Type: t, Left: left, Right: right, Cond: cond}
}

// Schema implements Node.
func (j *Join) Schema() *sqltypes.Schema {
	l, r := j.Left.Schema(), j.Right.Schema()
	if l == nil || r == nil {
		return nil
	}
	out := l.Concat(r)
	if j.Type == LeftOuterJoin {
		for i := l.Len(); i < out.Len(); i++ {
			out.Fields[i].Nullable = true
		}
	}
	return out
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// WithChildren implements Node.
func (j *Join) WithChildren(c []Node) (Node, error) {
	if len(c) != 2 {
		return nil, fmt.Errorf("plan: join takes 2 children")
	}
	return NewJoin(j.Type, c[0], c[1], j.Cond), nil
}

// Stats implements Node; column detail concatenates left-then-right to
// match the join output schema.
func (j *Join) Stats() Stats {
	ls, rs := j.Left.Stats(), j.Right.Stats()
	out := Stats{Rows: ls.Rows}
	if rs.Rows > out.Rows {
		out.Rows = rs.Rows
	}
	if ls.Cols != nil || rs.Cols != nil {
		lw, rw := 0, 0
		if s := j.Left.Schema(); s != nil {
			lw = s.Len()
		}
		if s := j.Right.Schema(); s != nil {
			rw = s.Len()
		}
		if lw+rw > 0 {
			out.Cols = make([]*stats.ColumnStats, lw+rw)
			for i := 0; i < lw; i++ {
				out.Cols[i] = ls.Col(i)
			}
			for i := 0; i < rw; i++ {
				out.Cols[lw+i] = rs.Col(i)
			}
		}
	}
	return out
}

func (j *Join) String() string {
	if j.Cond == nil {
		return fmt.Sprintf("Join %s (cross)", j.Type)
	}
	return fmt.Sprintf("Join %s on %s", j.Type, j.Cond)
}

// ---------------------------------------------------------------------------
// Aggregate

// Aggregate groups by Groups and computes Aggs.
type Aggregate struct {
	Groups []expr.Expr
	Aggs   []expr.Agg
	Child  Node
	schema *sqltypes.Schema
}

// NewAggregate builds an aggregation.
func NewAggregate(groups []expr.Expr, aggs []expr.Agg, child Node) *Aggregate {
	a := &Aggregate{Groups: groups, Aggs: aggs, Child: child}
	a.computeSchema()
	return a
}

func (a *Aggregate) computeSchema() {
	for _, g := range a.Groups {
		if !g.Resolved() {
			return
		}
	}
	for _, ag := range a.Aggs {
		if ag.Arg != nil && !ag.Arg.Resolved() {
			return
		}
	}
	fields := make([]sqltypes.Field, 0, len(a.Groups)+len(a.Aggs))
	for i, g := range a.Groups {
		fields = append(fields, sqltypes.Field{Name: OutputName(g, i), Type: g.Type(), Nullable: true})
	}
	for _, ag := range a.Aggs {
		name := ag.Name
		if name == "" {
			name = strings.ToLower(ag.String())
		}
		fields = append(fields, sqltypes.Field{Name: name, Type: ag.ResultType(), Nullable: true})
	}
	a.schema = sqltypes.NewSchema(fields...)
}

// Schema implements Node.
func (a *Aggregate) Schema() *sqltypes.Schema { return a.schema }

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// WithChildren implements Node.
func (a *Aggregate) WithChildren(c []Node) (Node, error) {
	if len(c) != 1 {
		return nil, fmt.Errorf("plan: aggregate takes 1 child")
	}
	return NewAggregate(a.Groups, a.Aggs, c[0]), nil
}

// Stats implements Node; with column statistics the group count is the
// product of the grouping columns' distinct counts (capped at the
// child cardinality), otherwise the structural child/10 guess.
func (a *Aggregate) Stats() Stats {
	if len(a.Groups) == 0 {
		return Stats{Rows: 1}
	}
	child := a.Child.Stats()
	groups := int64(1)
	known := child.Cols != nil
	for _, g := range a.Groups {
		b, ok := unwrapBoundExpr(g)
		if !ok {
			known = false
			break
		}
		cs := child.Col(b.Ordinal)
		if cs == nil || cs.NDV <= 0 {
			known = false
			break
		}
		if groups > child.Rows/cs.NDV {
			// Product would overshoot the child cardinality; cap below.
			groups = child.Rows
			break
		}
		groups *= cs.NDV
	}
	rows := child.Rows / 10
	if known {
		rows = groups
	}
	if rows > child.Rows {
		rows = child.Rows
	}
	if rows < 1 {
		rows = 1
	}
	return Stats{Rows: rows}
}

func (a *Aggregate) String() string {
	gs := make([]string, len(a.Groups))
	for i, g := range a.Groups {
		gs[i] = g.String()
	}
	as := make([]string, len(a.Aggs))
	for i, ag := range a.Aggs {
		as[i] = ag.String()
	}
	return fmt.Sprintf("Aggregate group=[%s] aggs=[%s]",
		strings.Join(gs, ", "), strings.Join(as, ", "))
}

// ---------------------------------------------------------------------------
// Sort

// SortOrder is one ORDER BY term.
type SortOrder struct {
	Expr expr.Expr
	Desc bool
}

func (o SortOrder) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String() + " ASC"
}

// Sort orders its child's rows.
type Sort struct {
	Orders []SortOrder
	Child  Node
}

// NewSort builds a sort node.
func NewSort(orders []SortOrder, child Node) *Sort { return &Sort{Orders: orders, Child: child} }

// Schema implements Node.
func (s *Sort) Schema() *sqltypes.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// WithChildren implements Node.
func (s *Sort) WithChildren(c []Node) (Node, error) {
	if len(c) != 1 {
		return nil, fmt.Errorf("plan: sort takes 1 child")
	}
	return NewSort(s.Orders, c[0]), nil
}

// Stats implements Node.
func (s *Sort) Stats() Stats { return s.Child.Stats() }

func (s *Sort) String() string {
	parts := make([]string, len(s.Orders))
	for i, o := range s.Orders {
		parts[i] = o.String()
	}
	return "Sort [" + strings.Join(parts, ", ") + "]"
}

// ---------------------------------------------------------------------------
// TopN

// TopN is the fused form of Limit(Sort(x)): the first N rows of the child
// under the sort orders. The optimizer recognizes ORDER BY ... LIMIT n
// plans and rewrites them to this node so the physical layer can run a
// bounded top-n (per-partition heaps plus an n-row merge) instead of a
// full global sort; the row engine lowers it back to Sort + Limit.
type TopN struct {
	Orders []SortOrder
	N      int64
	Child  Node
}

// NewTopN builds a top-n node.
func NewTopN(orders []SortOrder, n int64, child Node) *TopN {
	return &TopN{Orders: orders, N: n, Child: child}
}

// Schema implements Node.
func (t *TopN) Schema() *sqltypes.Schema { return t.Child.Schema() }

// Children implements Node.
func (t *TopN) Children() []Node { return []Node{t.Child} }

// WithChildren implements Node.
func (t *TopN) WithChildren(c []Node) (Node, error) {
	if len(c) != 1 {
		return nil, fmt.Errorf("plan: top-n takes 1 child")
	}
	return NewTopN(t.Orders, t.N, c[0]), nil
}

// Stats implements Node.
func (t *TopN) Stats() Stats {
	rows := t.Child.Stats().Rows
	if t.N < rows {
		rows = t.N
	}
	return Stats{Rows: rows}
}

func (t *TopN) String() string {
	parts := make([]string, len(t.Orders))
	for i, o := range t.Orders {
		parts[i] = o.String()
	}
	return fmt.Sprintf("TopN %d [%s]", t.N, strings.Join(parts, ", "))
}

// ---------------------------------------------------------------------------
// Limit

// Limit truncates its child to N rows.
type Limit struct {
	N     int64
	Child Node
}

// NewLimit builds a limit node.
func NewLimit(n int64, child Node) *Limit { return &Limit{N: n, Child: child} }

// Schema implements Node.
func (l *Limit) Schema() *sqltypes.Schema { return l.Child.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// WithChildren implements Node.
func (l *Limit) WithChildren(c []Node) (Node, error) {
	if len(c) != 1 {
		return nil, fmt.Errorf("plan: limit takes 1 child")
	}
	return NewLimit(l.N, c[0]), nil
}

// Stats implements Node.
func (l *Limit) Stats() Stats {
	rows := l.Child.Stats().Rows
	if l.N < rows {
		rows = l.N
	}
	return Stats{Rows: rows}
}

func (l *Limit) String() string { return fmt.Sprintf("Limit %d", l.N) }

// ---------------------------------------------------------------------------
// Union

// Union concatenates inputs with identical schemas (UNION ALL).
type Union struct {
	Inputs []Node
}

// NewUnion builds a union node.
func NewUnion(inputs ...Node) *Union { return &Union{Inputs: inputs} }

// Schema implements Node.
func (u *Union) Schema() *sqltypes.Schema {
	if len(u.Inputs) == 0 {
		return nil
	}
	return u.Inputs[0].Schema()
}

// Children implements Node.
func (u *Union) Children() []Node { return u.Inputs }

// WithChildren implements Node.
func (u *Union) WithChildren(c []Node) (Node, error) {
	if len(c) != len(u.Inputs) {
		return nil, fmt.Errorf("plan: union arity mismatch")
	}
	return NewUnion(c...), nil
}

// Stats implements Node.
func (u *Union) Stats() Stats {
	var rows int64
	for _, in := range u.Inputs {
		rows += in.Stats().Rows
	}
	return Stats{Rows: rows}
}

func (u *Union) String() string { return fmt.Sprintf("Union (%d inputs)", len(u.Inputs)) }

// ---------------------------------------------------------------------------
// Values

// Values is an inline row literal relation (used by appends and tests).
type Values struct {
	Rows   []sqltypes.Row
	schema *sqltypes.Schema
}

// NewValues wraps literal rows with a schema.
func NewValues(schema *sqltypes.Schema, rows []sqltypes.Row) *Values {
	return &Values{Rows: rows, schema: schema}
}

// Schema implements Node.
func (v *Values) Schema() *sqltypes.Schema { return v.schema }

// Children implements Node.
func (v *Values) Children() []Node { return nil }

// WithChildren implements Node.
func (v *Values) WithChildren(c []Node) (Node, error) {
	if len(c) != 0 {
		return nil, fmt.Errorf("plan: values takes no children")
	}
	return v, nil
}

// Stats implements Node.
func (v *Values) Stats() Stats { return Stats{Rows: int64(len(v.Rows))} }

func (v *Values) String() string { return fmt.Sprintf("Values (%d rows)", len(v.Rows)) }

// ---------------------------------------------------------------------------
// Tree utilities

// TreeString renders the plan as an indented tree.
func TreeString(n Node) string {
	var sb strings.Builder
	var rec func(Node, int)
	rec = func(node Node, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(node.String())
		sb.WriteByte('\n')
		for _, c := range node.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return sb.String()
}

// Transform rewrites the plan bottom-up.
func Transform(n Node, fn func(Node) (Node, error)) (Node, error) {
	children := n.Children()
	if len(children) > 0 {
		newChildren := make([]Node, len(children))
		changed := false
		for i, c := range children {
			nc, err := Transform(c, fn)
			if err != nil {
				return nil, err
			}
			newChildren[i] = nc
			if nc != c {
				changed = true
			}
		}
		if changed {
			var err error
			n, err = n.WithChildren(newChildren)
			if err != nil {
				return nil, err
			}
		}
	}
	return fn(n)
}
