package plan

import (
	"math"
	"testing"

	"indexeddf/internal/expr"
	"indexeddf/internal/sqltypes"
	"indexeddf/internal/stats"
)

// statsChild builds a Stats over one Int64 column "a" with the given
// shape: count rows, nulls of them NULL, ndv distinct non-null values
// uniform over [lo, hi].
func statsChild(count, nulls, ndv, lo, hi int64) Stats {
	return Stats{
		Rows: count,
		Cols: []*stats.ColumnStats{{
			Count: count,
			Nulls: nulls,
			NDV:   ndv,
			Min:   sqltypes.NewInt64(lo),
			Max:   sqltypes.NewInt64(hi),
		}},
	}
}

func colA() *expr.Bound { return expr.B(0, sqltypes.Int64, "a") }

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s: selectivity %v, want %v", name, got, want)
	}
}

func TestSelectivityEqualityUsesNDV(t *testing.T) {
	child := statsChild(1000, 0, 50, 0, 999)
	sel := EstimateSelectivity(expr.NewCmp(expr.Eq, colA(), expr.LitInt64(7)), child)
	approx(t, "a = 7 with 50 NDV", sel, 1.0/50)

	// Nulls shrink the matchable fraction: 20% nulls leaves 0.8/NDV.
	child = statsChild(1000, 200, 50, 0, 999)
	sel = EstimateSelectivity(expr.NewCmp(expr.Eq, colA(), expr.LitInt64(7)), child)
	approx(t, "a = 7 with 20% nulls", sel, 0.8/50)
}

func TestSelectivityOutOfRangeLiteral(t *testing.T) {
	child := statsChild(1000, 0, 50, 0, 99)
	eq := EstimateSelectivity(expr.NewCmp(expr.Eq, colA(), expr.LitInt64(500)), child)
	approx(t, "a = 500 outside [0,99]", eq, 0)
	// <> an impossible value keeps every non-null row.
	ne := EstimateSelectivity(expr.NewCmp(expr.Ne, colA(), expr.LitInt64(500)), child)
	approx(t, "a <> 500 outside [0,99]", ne, 1)
}

func TestSelectivityRangeInterpolation(t *testing.T) {
	child := statsChild(1000, 0, 1000, 0, 1000)
	lt := EstimateSelectivity(expr.NewCmp(expr.Lt, colA(), expr.LitInt64(250)), child)
	approx(t, "a < 250 over [0,1000]", lt, 0.25)
	gt := EstimateSelectivity(expr.NewCmp(expr.Gt, colA(), expr.LitInt64(250)), child)
	approx(t, "a > 250 over [0,1000]", gt, 0.75)
	// Flipped literal-on-the-left spelling must agree.
	flipped := EstimateSelectivity(expr.NewCmp(expr.Gt, expr.LitInt64(250), colA()), child)
	approx(t, "250 > a over [0,1000]", flipped, 0.25)
	// Bounds clamp: a < min keeps nothing, a < beyond-max keeps all.
	below := EstimateSelectivity(expr.NewCmp(expr.Lt, colA(), expr.LitInt64(-5)), child)
	approx(t, "a < -5 over [0,1000]", below, 0)
	above := EstimateSelectivity(expr.NewCmp(expr.Lt, colA(), expr.LitInt64(5000)), child)
	approx(t, "a < 5000 over [0,1000]", above, 1)
}

func TestSelectivityIsNull(t *testing.T) {
	child := statsChild(1000, 300, 10, 0, 9)
	isNull := EstimateSelectivity(&expr.IsNull{E: colA()}, child)
	approx(t, "a IS NULL at 30% nulls", isNull, 0.3)
	notNull := EstimateSelectivity(&expr.IsNull{E: colA(), Negate: true}, child)
	approx(t, "a IS NOT NULL at 30% nulls", notNull, 0.7)
}

func TestSelectivityComposition(t *testing.T) {
	child := statsChild(1000, 0, 1000, 0, 1000)
	lt := expr.NewCmp(expr.Lt, colA(), expr.LitInt64(500))  // 0.5
	lt2 := expr.NewCmp(expr.Lt, colA(), expr.LitInt64(100)) // 0.1
	and := EstimateSelectivity(expr.And(lt, lt2), child)
	approx(t, "AND multiplies", and, 0.5*0.1)
	or := EstimateSelectivity(expr.Or(lt, lt2), child)
	approx(t, "OR adds under independence", or, 0.5+0.1-0.5*0.1)
	not := EstimateSelectivity(expr.NewNot(lt), child)
	approx(t, "NOT complements", not, 0.5)
}

func TestSelectivityFallbacksWithoutStats(t *testing.T) {
	var child Stats // no column statistics at all
	eq := EstimateSelectivity(expr.NewCmp(expr.Eq, colA(), expr.LitInt64(7)), child)
	approx(t, "equality fallback", eq, eqSel)
	lt := EstimateSelectivity(expr.NewCmp(expr.Lt, colA(), expr.LitInt64(7)), child)
	approx(t, "inequality fallback", lt, defaultSel)
	// Column-vs-column comparisons are not modeled even with stats.
	both := statsChild(1000, 0, 10, 0, 9)
	cc := EstimateSelectivity(expr.NewCmp(expr.Lt, colA(), colA()), both)
	approx(t, "column-vs-column fallback", cc, defaultSel)
}

func TestSelectivityLiteralBool(t *testing.T) {
	child := statsChild(10, 0, 10, 0, 9)
	approx(t, "TRUE", EstimateSelectivity(expr.Lit(sqltypes.NewBool(true)), child), 1)
	approx(t, "FALSE", EstimateSelectivity(expr.Lit(sqltypes.NewBool(false)), child), 0)
}
