package sqlparser

import (
	"fmt"
	"strconv"
	"strings"

	"indexeddf/internal/catalog"
	"indexeddf/internal/expr"
	"indexeddf/internal/plan"
	"indexeddf/internal/sqltypes"
)

// Resolver maps a table name to its catalog entry.
type Resolver func(name string) (catalog.Table, error)

// Parse compiles a SQL query into an unresolved logical plan.
func Parse(query string, resolve Resolver) (plan.Node, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, resolve: resolve}
	node, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tkEOF, "") {
		return nil, fmt.Errorf("sqlparser: unexpected trailing input %q", p.peek())
	}
	return node, nil
}

type parser struct {
	toks    []token
	pos     int
	resolve Resolver
	// params counts `?` placeholders in lexical order; each gets the next
	// 0-based index.
	params int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, fmt.Errorf("sqlparser: expected %q, found %q", text, p.peek())
}

// aggPlaceholder marks an aggregate call inside an expression tree; the
// plan builder extracts these into the Aggregate node.
type aggPlaceholder struct {
	fn  expr.AggFunc
	arg expr.Expr // nil for COUNT(*)
}

func (a *aggPlaceholder) String() string {
	if a.fn == expr.CountStarAgg {
		return "COUNT(*)"
	}
	return fmt.Sprintf("%s(%s)", a.fn, a.arg)
}
func (a *aggPlaceholder) Type() sqltypes.Type { return expr.Agg{Func: a.fn, Arg: a.arg}.ResultType() }
func (a *aggPlaceholder) Resolved() bool      { return false }
func (a *aggPlaceholder) Children() []expr.Expr {
	if a.arg == nil {
		return nil
	}
	return []expr.Expr{a.arg}
}
func (a *aggPlaceholder) WithChildren(c []expr.Expr) (expr.Expr, error) {
	if a.arg == nil {
		if len(c) != 0 {
			return nil, fmt.Errorf("sqlparser: COUNT(*) takes no children")
		}
		return a, nil
	}
	if len(c) != 1 {
		return nil, fmt.Errorf("sqlparser: aggregate takes one child")
	}
	return &aggPlaceholder{fn: a.fn, arg: c[0]}, nil
}
func (a *aggPlaceholder) Eval(sqltypes.Row) (sqltypes.Value, error) {
	return sqltypes.Null, fmt.Errorf("sqlparser: aggregate %s evaluated outside GROUP BY", a)
}

// selectItem is one projection entry.
type selectItem struct {
	e     expr.Expr
	alias string
	star  bool
}

// parseQuery handles UNION ALL chains.
func (p *parser) parseQuery() (plan.Node, error) {
	left, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "UNION") {
		if _, err := p.expect(tkKeyword, "ALL"); err != nil {
			return nil, fmt.Errorf("sqlparser: only UNION ALL is supported: %v", err)
		}
		right, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		left = plan.NewUnion(left, right)
	}
	return left, nil
}

// parseSelect parses one SELECT statement.
func (p *parser) parseSelect() (plan.Node, error) {
	if _, err := p.expect(tkKeyword, "SELECT"); err != nil {
		return nil, err
	}
	distinct := p.accept(tkKeyword, "DISTINCT")

	var items []selectItem
	for {
		if p.accept(tkSymbol, "*") {
			items = append(items, selectItem{star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			alias := ""
			if p.accept(tkKeyword, "AS") {
				t, err := p.expect(tkIdent, "")
				if err != nil {
					return nil, err
				}
				alias = t.text
			} else if p.at(tkIdent, "") {
				alias = p.next().text
			}
			items = append(items, selectItem{e: e, alias: alias})
		}
		if !p.accept(tkSymbol, ",") {
			break
		}
	}

	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	node, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	// Joins.
	for {
		jt := plan.InnerJoin
		cross := false
		switch {
		case p.accept(tkKeyword, "JOIN"):
		case p.at(tkKeyword, "INNER"):
			p.next()
			if _, err := p.expect(tkKeyword, "JOIN"); err != nil {
				return nil, err
			}
		case p.at(tkKeyword, "LEFT"):
			p.next()
			p.accept(tkKeyword, "OUTER")
			if _, err := p.expect(tkKeyword, "JOIN"); err != nil {
				return nil, err
			}
			jt = plan.LeftOuterJoin
		case p.at(tkKeyword, "CROSS"):
			p.next()
			if _, err := p.expect(tkKeyword, "JOIN"); err != nil {
				return nil, err
			}
			cross = true
		default:
			goto joinsDone
		}
		{
			right, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			var cond expr.Expr
			if !cross {
				if _, err := p.expect(tkKeyword, "ON"); err != nil {
					return nil, err
				}
				cond, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			node = plan.NewJoin(jt, node, right, cond)
		}
	}
joinsDone:

	var where expr.Expr
	if p.accept(tkKeyword, "WHERE") {
		where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	var groups []expr.Expr
	if p.accept(tkKeyword, "GROUP") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			groups = append(groups, g)
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	var having expr.Expr
	if p.accept(tkKeyword, "HAVING") {
		having, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	type orderTerm struct {
		e    expr.Expr
		desc bool
	}
	var orders []orderTerm
	if p.accept(tkKeyword, "ORDER") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			desc := false
			if p.accept(tkKeyword, "DESC") {
				desc = true
			} else {
				p.accept(tkKeyword, "ASC")
			}
			orders = append(orders, orderTerm{e: e, desc: desc})
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
	}
	limit := int64(-1)
	if p.accept(tkKeyword, "LIMIT") {
		t, err := p.expect(tkNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlparser: bad LIMIT %q", t.text)
		}
		limit = n
	}

	return p.buildPlan(node, items, distinct, where, groups, having,
		func() ([]plan.SortOrder, error) {
			out := make([]plan.SortOrder, len(orders))
			for i, o := range orders {
				out[i] = plan.SortOrder{Expr: o.e, Desc: o.desc}
			}
			return out, nil
		}, limit)
}

// parseTableRef parses `name [AS alias | alias]`.
func (p *parser) parseTableRef() (plan.Node, error) {
	t, err := p.expect(tkIdent, "")
	if err != nil {
		return nil, fmt.Errorf("sqlparser: expected table name: %v", err)
	}
	alias := ""
	if p.accept(tkKeyword, "AS") {
		a, err := p.expect(tkIdent, "")
		if err != nil {
			return nil, err
		}
		alias = a.text
	} else if p.at(tkIdent, "") {
		alias = p.next().text
	}
	table, err := p.resolve(t.text)
	if err != nil {
		return nil, err
	}
	if alias == "" {
		alias = t.text
	}
	return plan.NewRelation(table, alias), nil
}

// ---------------------------------------------------------------------------
// Expression grammar

func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = expr.Or(left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = expr.And(left, right)
	}
	return left, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.accept(tkKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return expr.NewNot(e), nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (expr.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(tkKeyword, "IS") {
		negate := p.accept(tkKeyword, "NOT")
		if _, err := p.expect(tkKeyword, "NULL"); err != nil {
			return nil, err
		}
		return &expr.IsNull{E: left, Negate: negate}, nil
	}
	// BETWEEN lo AND hi
	if p.accept(tkKeyword, "BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkKeyword, "AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return expr.And(expr.NewCmp(expr.Ge, left, lo), expr.NewCmp(expr.Le, left, hi)), nil
	}
	// LIKE 'pattern'
	if p.accept(tkKeyword, "LIKE") {
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return expr.NewFunc("LIKE", left, pat), nil
	}
	// IN (v1, v2, ...)
	if p.accept(tkKeyword, "IN") {
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		var out expr.Expr
		for {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			eq := expr.NewCmp(expr.Eq, left, v)
			if out == nil {
				out = eq
			} else {
				out = expr.Or(out, eq)
			}
			if !p.accept(tkSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return out, nil
	}
	ops := map[string]expr.CmpOp{
		"=": expr.Eq, "<>": expr.Ne, "!=": expr.Ne,
		"<": expr.Lt, "<=": expr.Le, ">": expr.Gt, ">=": expr.Ge,
	}
	if p.peek().kind == tkSymbol {
		if op, ok := ops[p.peek().text]; ok {
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return expr.NewCmp(op, left, right), nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkSymbol, "+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = expr.NewArith(expr.Add, left, r)
		case p.accept(tkSymbol, "-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = expr.NewArith(expr.Sub, left, r)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkSymbol, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = expr.NewArith(expr.Mul, left, r)
		case p.accept(tkSymbol, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = expr.NewArith(expr.Div, left, r)
		case p.accept(tkSymbol, "%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = expr.NewArith(expr.Mod, left, r)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.accept(tkSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return expr.NewArith(expr.Sub, expr.LitInt64(0), e), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tkNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlparser: bad number %q", t.text)
			}
			return expr.Lit(sqltypes.NewFloat64(f)), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlparser: bad number %q", t.text)
		}
		return expr.LitInt64(i), nil
	case t.kind == tkString:
		p.next()
		return expr.LitString(t.text), nil
	case t.kind == tkKeyword && t.text == "TRUE":
		p.next()
		return expr.Lit(sqltypes.NewBool(true)), nil
	case t.kind == tkKeyword && t.text == "FALSE":
		p.next()
		return expr.Lit(sqltypes.NewBool(false)), nil
	case t.kind == tkKeyword && t.text == "NULL":
		p.next()
		return expr.Lit(sqltypes.Null), nil
	case t.kind == tkKeyword && isAggKeyword(t.text):
		return p.parseAggregate()
	case t.kind == tkKeyword && t.text == "CAST":
		p.next()
		if _, err := p.expect(tkSymbol, "("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkKeyword, "AS"); err != nil {
			return nil, err
		}
		ty, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return &expr.Cast{E: e, To: ty}, nil
	case t.kind == tkSymbol && t.text == "?":
		p.next()
		e := expr.NewParam(p.params)
		p.params++
		return e, nil
	case t.kind == tkSymbol && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tkIdent:
		p.next()
		name := t.text
		// Qualified column a.b.
		if p.accept(tkSymbol, ".") {
			col, err := p.expect(tkIdent, "")
			if err != nil {
				return nil, err
			}
			return expr.C(name + "." + col.text), nil
		}
		// Scalar function call.
		if p.accept(tkSymbol, "(") {
			var args []expr.Expr
			if !p.at(tkSymbol, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(tkSymbol, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tkSymbol, ")"); err != nil {
				return nil, err
			}
			return expr.NewFunc(name, args...), nil
		}
		return expr.C(name), nil
	}
	return nil, fmt.Errorf("sqlparser: unexpected token %q", t)
}

func isAggKeyword(s string) bool {
	switch s {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

func (p *parser) parseAggregate() (expr.Expr, error) {
	t := p.next()
	if _, err := p.expect(tkSymbol, "("); err != nil {
		return nil, err
	}
	var fn expr.AggFunc
	switch t.text {
	case "COUNT":
		fn = expr.CountAgg
	case "SUM":
		fn = expr.SumAgg
	case "MIN":
		fn = expr.MinAgg
	case "MAX":
		fn = expr.MaxAgg
	case "AVG":
		fn = expr.AvgAgg
	}
	if t.text == "COUNT" && p.accept(tkSymbol, "*") {
		if _, err := p.expect(tkSymbol, ")"); err != nil {
			return nil, err
		}
		return &aggPlaceholder{fn: expr.CountStarAgg}, nil
	}
	p.accept(tkKeyword, "DISTINCT") // parsed but treated as plain (documented)
	arg, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tkSymbol, ")"); err != nil {
		return nil, err
	}
	return &aggPlaceholder{fn: fn, arg: arg}, nil
}

func (p *parser) parseTypeName() (sqltypes.Type, error) {
	t, err := p.expect(tkIdent, "")
	if err != nil {
		return sqltypes.Unknown, err
	}
	switch strings.ToUpper(t.text) {
	case "INT", "INTEGER":
		return sqltypes.Int32, nil
	case "BIGINT", "LONG":
		return sqltypes.Int64, nil
	case "DOUBLE", "FLOAT":
		return sqltypes.Float64, nil
	case "STRING", "VARCHAR", "TEXT":
		return sqltypes.String, nil
	case "BOOLEAN", "BOOL":
		return sqltypes.Bool, nil
	case "TIMESTAMP":
		return sqltypes.Timestamp, nil
	}
	return sqltypes.Unknown, fmt.Errorf("sqlparser: unknown type %q", t.text)
}
