package sqlparser

import (
	"fmt"
	"strings"

	"indexeddf/internal/plan"
)

// StatementKind classifies a parsed SQL statement.
type StatementKind uint8

// Statement kinds.
const (
	// StmtSelect is a query; Statement.Select holds the logical plan.
	StmtSelect StatementKind = iota
	// StmtCreateView is CREATE MATERIALIZED VIEW name AS SELECT ...
	StmtCreateView
	// StmtDropView is DROP MATERIALIZED VIEW name.
	StmtDropView
	// StmtRefreshView is REFRESH MATERIALIZED VIEW name.
	StmtRefreshView
	// StmtExplain is EXPLAIN [ANALYZE] SELECT ...; Statement.Select holds
	// the explained query and Statement.Analyze reports whether it should
	// be executed (ANALYZE) or only planned.
	StmtExplain
	// StmtAnalyzeTable is ANALYZE TABLE name: rebuild the table's
	// statistics from a full scan. Statement.TableName holds the table.
	StmtAnalyzeTable
)

// Statement is one parsed SQL statement: either a query or a
// materialized-view DDL command.
type Statement struct {
	Kind StatementKind
	// Select is the query plan (StmtSelect, and the defining query of
	// StmtCreateView).
	Select plan.Node
	// ViewName is the view the DDL statement addresses.
	ViewName string
	// ViewSQL is the original text of the defining SELECT
	// (StmtCreateView).
	ViewSQL string
	// NumParams is the number of `?` placeholders the statement declares
	// (StmtSelect only; prepared statements bind one argument per
	// placeholder, in lexical order).
	NumParams int
	// Analyze marks EXPLAIN ANALYZE (StmtExplain only): the query runs to
	// completion and the rendered plan carries actual row counts and
	// timings.
	Analyze bool
	// TableName is the table the DDL statement addresses
	// (StmtAnalyzeTable).
	TableName string
}

// ParseStatement compiles one SQL statement: SELECT queries (see Parse)
// plus the materialized-view DDL verbs
// CREATE MATERIALIZED VIEW name AS SELECT ...,
// DROP MATERIALIZED VIEW name and REFRESH MATERIALIZED VIEW name,
// EXPLAIN [ANALYZE] SELECT ..., and ANALYZE TABLE name.
func ParseStatement(query string, resolve Resolver) (*Statement, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, resolve: resolve}

	expectViewName := func(verb string) (string, error) {
		if _, err := p.expect(tkKeyword, "MATERIALIZED"); err != nil {
			return "", fmt.Errorf("sqlparser: %s supports only MATERIALIZED VIEW: %v", verb, err)
		}
		if _, err := p.expect(tkKeyword, "VIEW"); err != nil {
			return "", err
		}
		t, err := p.expect(tkIdent, "")
		if err != nil {
			return "", fmt.Errorf("sqlparser: expected view name: %v", err)
		}
		return t.text, nil
	}

	switch {
	case p.accept(tkKeyword, "CREATE"):
		name, err := expectViewName("CREATE")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tkKeyword, "AS"); err != nil {
			return nil, err
		}
		selStart := p.peek().pos
		node, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if !p.at(tkEOF, "") {
			return nil, fmt.Errorf("sqlparser: unexpected trailing input %q", p.peek())
		}
		if p.params > 0 {
			return nil, fmt.Errorf("sqlparser: parameter placeholders are not allowed in view definitions")
		}
		return &Statement{
			Kind:     StmtCreateView,
			Select:   node,
			ViewName: name,
			ViewSQL:  strings.TrimSpace(query[selStart:]),
		}, nil
	case p.accept(tkKeyword, "ANALYZE"):
		// ANALYZE TABLE name — TABLE lexes as an identifier (it is not a
		// reserved word), so match its text explicitly.
		if t, err := p.expect(tkIdent, ""); err != nil || !strings.EqualFold(t.text, "TABLE") {
			return nil, fmt.Errorf("sqlparser: expected TABLE after ANALYZE")
		}
		t, err := p.expect(tkIdent, "")
		if err != nil {
			return nil, fmt.Errorf("sqlparser: expected table name: %v", err)
		}
		if !p.at(tkEOF, "") {
			return nil, fmt.Errorf("sqlparser: unexpected trailing input %q", p.peek())
		}
		return &Statement{Kind: StmtAnalyzeTable, TableName: t.text}, nil
	case p.accept(tkKeyword, "EXPLAIN"):
		analyze := p.accept(tkKeyword, "ANALYZE")
		node, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if !p.at(tkEOF, "") {
			return nil, fmt.Errorf("sqlparser: unexpected trailing input %q", p.peek())
		}
		return &Statement{Kind: StmtExplain, Select: node, NumParams: p.params, Analyze: analyze}, nil
	case p.accept(tkKeyword, "DROP"):
		name, err := expectViewName("DROP")
		if err != nil {
			return nil, err
		}
		if !p.at(tkEOF, "") {
			return nil, fmt.Errorf("sqlparser: unexpected trailing input %q", p.peek())
		}
		return &Statement{Kind: StmtDropView, ViewName: name}, nil
	case p.accept(tkKeyword, "REFRESH"):
		name, err := expectViewName("REFRESH")
		if err != nil {
			return nil, err
		}
		if !p.at(tkEOF, "") {
			return nil, fmt.Errorf("sqlparser: unexpected trailing input %q", p.peek())
		}
		return &Statement{Kind: StmtRefreshView, ViewName: name}, nil
	default:
		node, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if !p.at(tkEOF, "") {
			return nil, fmt.Errorf("sqlparser: unexpected trailing input %q", p.peek())
		}
		return &Statement{Kind: StmtSelect, Select: node, NumParams: p.params}, nil
	}
}

// Normalize canonicalizes a statement's text for use as a plan-cache key:
// it lexes the input and re-joins the tokens, collapsing whitespace and
// comments and upper-casing keywords, so trivially different spellings of
// one statement share a cache entry. Identifier case is preserved (the
// catalog is case-sensitive) and string literals are re-quoted.
func Normalize(query string) (string, error) {
	toks, err := lex(query)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for i, t := range toks {
		if t.kind == tkEOF {
			break
		}
		if i > 0 {
			sb.WriteByte(' ')
		}
		if t.kind == tkString {
			sb.WriteByte('\'')
			sb.WriteString(strings.ReplaceAll(t.text, "'", "''"))
			sb.WriteByte('\'')
			continue
		}
		sb.WriteString(t.text)
	}
	return sb.String(), nil
}
