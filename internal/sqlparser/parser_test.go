package sqlparser

import (
	"fmt"
	"strings"
	"testing"

	"indexeddf/internal/catalog"
	"indexeddf/internal/plan"
	"indexeddf/internal/sqltypes"
)

func resolver() Resolver {
	person := catalog.NewColumnTable("person", sqltypes.NewSchema(
		sqltypes.Field{Name: "id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "name", Type: sqltypes.String},
		sqltypes.Field{Name: "age", Type: sqltypes.Int64},
	), nil)
	knows := catalog.NewColumnTable("knows", sqltypes.NewSchema(
		sqltypes.Field{Name: "person1Id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "person2Id", Type: sqltypes.Int64},
	), nil)
	return func(name string) (catalog.Table, error) {
		switch name {
		case "person":
			return person, nil
		case "knows":
			return knows, nil
		}
		return nil, fmt.Errorf("no table %q", name)
	}
}

func parse(t *testing.T, q string) plan.Node {
	t.Helper()
	n, err := Parse(q, resolver())
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return n
}

func TestLexerBasics(t *testing.T) {
	toks, err := lex("SELECT a, 'it''s' FROM t WHERE x >= 1.5 -- c\nAND y <> 2")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.String())
	}
	joined := strings.Join(texts, " ")
	for _, want := range []string{"SELECT", "it's", ">=", "1.5", "<>", "<eof>"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("lexer output %q missing %q", joined, want)
		}
	}
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := lex("SELECT @"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestParseSelectShape(t *testing.T) {
	n := parse(t, "SELECT id, name FROM person WHERE age > 30 ORDER BY id DESC LIMIT 5")
	// Expect Limit(Sort(Project(Filter(Relation)))).
	lim, ok := n.(*plan.Limit)
	if !ok || lim.N != 5 {
		t.Fatalf("top = %T", n)
	}
	srt, ok := lim.Child.(*plan.Sort)
	if !ok || !srt.Orders[0].Desc {
		t.Fatalf("sort = %+v", lim.Child)
	}
	prj, ok := srt.Child.(*plan.Project)
	if !ok || len(prj.Exprs) != 2 {
		t.Fatalf("project = %+v", srt.Child)
	}
	flt, ok := prj.Child.(*plan.Filter)
	if !ok {
		t.Fatalf("filter = %+v", prj.Child)
	}
	if _, ok := flt.Child.(*plan.Relation); !ok {
		t.Fatalf("relation = %+v", flt.Child)
	}
}

func TestParseJoinShape(t *testing.T) {
	n := parse(t, "SELECT p.name FROM knows k JOIN person p ON k.person1Id = p.id")
	prj := n.(*plan.Project)
	j, ok := prj.Child.(*plan.Join)
	if !ok || j.Type != plan.InnerJoin {
		t.Fatalf("join = %+v", prj.Child)
	}
	left := j.Left.(*plan.Relation)
	if left.Alias != "k" {
		t.Fatalf("left alias = %q", left.Alias)
	}
	// LEFT OUTER JOIN.
	n2 := parse(t, "SELECT p.name FROM person p LEFT JOIN knows k ON p.id = k.person1Id")
	if j2 := n2.(*plan.Project).Child.(*plan.Join); j2.Type != plan.LeftOuterJoin {
		t.Fatalf("left join type = %v", j2.Type)
	}
	// CROSS JOIN has no condition.
	n3 := parse(t, "SELECT p.name FROM person p CROSS JOIN knows k")
	if j3 := n3.(*plan.Project).Child.(*plan.Join); j3.Cond != nil {
		t.Fatalf("cross join cond = %v", j3.Cond)
	}
}

func TestParseAggregateShape(t *testing.T) {
	n := parse(t, "SELECT age, COUNT(*) AS c, SUM(id) FROM person GROUP BY age HAVING COUNT(*) > 1")
	prj, ok := n.(*plan.Project)
	if !ok {
		t.Fatalf("top = %T", n)
	}
	flt, ok := prj.Child.(*plan.Filter) // HAVING
	if !ok {
		t.Fatalf("having missing: %T", prj.Child)
	}
	agg, ok := flt.Child.(*plan.Aggregate)
	if !ok || len(agg.Groups) != 1 || len(agg.Aggs) != 2 {
		t.Fatalf("aggregate = %+v", flt.Child)
	}
}

func TestParseDistinctBecomesGroupBy(t *testing.T) {
	n := parse(t, "SELECT DISTINCT age FROM person")
	if _, ok := n.(*plan.Aggregate); !ok {
		t.Fatalf("distinct top = %T", n)
	}
}

func TestParseUnionAll(t *testing.T) {
	n := parse(t, "SELECT id FROM person UNION ALL SELECT person1Id FROM knows")
	u, ok := n.(*plan.Union)
	if !ok || len(u.Inputs) != 2 {
		t.Fatalf("union = %T", n)
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []string{
		"SELECT id + 1 * 2 FROM person",
		"SELECT -id FROM person",
		"SELECT id FROM person WHERE name LIKE 'a%'",
		"SELECT id FROM person WHERE id BETWEEN 1 AND 5",
		"SELECT id FROM person WHERE id IN (1, 2, 3)",
		"SELECT id FROM person WHERE name IS NOT NULL",
		"SELECT CAST(id AS STRING) FROM person",
		"SELECT UPPER(name) FROM person",
		"SELECT id FROM person WHERE NOT (id = 1 OR id = 2) AND TRUE",
		"SELECT COUNT(DISTINCT age) FROM person",
		"SELECT AVG(age), MIN(age), MAX(age) FROM person",
		"SELECT id FROM person WHERE age % 2 = 0",
	}
	for _, q := range cases {
		parse(t, q)
	}
}

func TestParsePrecedence(t *testing.T) {
	n := parse(t, "SELECT id FROM person WHERE id = 1 OR id = 2 AND age = 3")
	f := n.(*plan.Project).Child.(*plan.Filter)
	// AND binds tighter: (id=1) OR ((id=2) AND (age=3)).
	s := f.Cond.String()
	want := "((id = 1) OR ((id = 2) AND (age = 3)))"
	if s != want {
		t.Fatalf("precedence: %s, want %s", s, want)
	}
	// Arithmetic precedence.
	n2 := parse(t, "SELECT 1 + 2 * 3 FROM person")
	e := n2.(*plan.Project).Exprs[0].String()
	if e != "(1 + (2 * 3))" {
		t.Fatalf("arith precedence: %s", e)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM person",
		"SELECT * FROM",
		"SELECT * FROM nosuch",
		"SELECT * FROM person WHERE",
		"SELECT * FROM person LIMIT x",
		"SELECT * FROM person JOIN knows", // missing ON
		"SELECT id FROM person UNION SELECT id FROM person",
		"SELECT CAST(id AS NOPE) FROM person",
		"SELECT * FROM person trailing junk here",
		"SELECT id id2 id3 FROM person",
	}
	for _, q := range bad {
		if _, err := Parse(q, resolver()); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParsePlaceholders(t *testing.T) {
	stmt, err := ParseStatement("SELECT id FROM person WHERE id = ? AND age >= ?", resolver())
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Kind != StmtSelect || stmt.NumParams != 2 {
		t.Fatalf("kind=%d params=%d, want SELECT with 2 params", stmt.Kind, stmt.NumParams)
	}
	// Placeholders are numbered in lexical order.
	s := plan.TreeString(stmt.Select)
	if !strings.Contains(s, "?1") || !strings.Contains(s, "?2") {
		t.Fatalf("placeholder ordering not reflected in plan:\n%s", s)
	}
	// View definitions reject placeholders.
	if _, err := ParseStatement("CREATE MATERIALIZED VIEW v AS SELECT id FROM person WHERE id = ?", resolver()); err == nil {
		t.Fatal("placeholder in view definition should fail")
	}
}

func TestNormalize(t *testing.T) {
	a, err := Normalize("select  id ,name\n from person  where name = 'o''brien' -- trailing comment")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Normalize("SELECT id, name FROM person WHERE name = 'o''brien'")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("normalized forms differ:\n%q\n%q", a, b)
	}
	// Identifier case is preserved (catalog is case-sensitive).
	c, _ := Normalize("SELECT ID FROM person")
	d, _ := Normalize("SELECT id FROM person")
	if c == d {
		t.Fatal("identifier case should be preserved")
	}
}
