package sqlparser

import (
	"fmt"

	"indexeddf/internal/expr"
	"indexeddf/internal/plan"
)

// buildPlan assembles the operator tree for one SELECT:
// FROM/JOIN -> WHERE -> AGGREGATE(+HAVING) -> PROJECT -> DISTINCT ->
// ORDER BY -> LIMIT.
func (p *parser) buildPlan(from plan.Node, items []selectItem, distinct bool,
	where expr.Expr, groups []expr.Expr, having expr.Expr,
	orderFn func() ([]plan.SortOrder, error), limit int64) (plan.Node, error) {

	node := from
	if where != nil {
		node = plan.NewFilter(where, node)
	}

	// Collect aggregates from select items and HAVING.
	var aggs []expr.Agg
	aggNames := map[string]string{} // placeholder string -> output column name
	collect := func(e expr.Expr) {
		expr.Walk(e, func(n expr.Expr) bool {
			if ph, ok := n.(*aggPlaceholder); ok {
				key := ph.String()
				if _, seen := aggNames[key]; !seen {
					name := fmt.Sprintf("agg_%d", len(aggs))
					aggNames[key] = name
					aggs = append(aggs, expr.Agg{Func: ph.fn, Arg: ph.arg, Name: name})
				}
				return false
			}
			return true
		})
	}
	for _, it := range items {
		if !it.star {
			collect(it.e)
		}
	}
	if having != nil {
		collect(having)
	}

	hasAgg := len(aggs) > 0 || len(groups) > 0
	if hasAgg {
		for _, it := range items {
			if it.star {
				return nil, fmt.Errorf("sqlparser: SELECT * cannot be combined with GROUP BY or aggregates")
			}
		}
		node = plan.NewAggregate(groups, aggs, node)
		// After aggregation, expressions refer to the aggregate's outputs:
		// group expressions by their text, aggregates by generated names.
		rewrite := func(e expr.Expr) (expr.Expr, error) {
			return expr.Transform(e, func(n expr.Expr) (expr.Expr, error) {
				if ph, ok := n.(*aggPlaceholder); ok {
					return expr.C(aggNames[ph.String()]), nil
				}
				for gi, g := range groups {
					if n.String() == g.String() {
						return expr.C(plan.OutputName(g, gi)), nil
					}
				}
				return n, nil
			})
		}
		if having != nil {
			h, err := rewrite(having)
			if err != nil {
				return nil, err
			}
			node = plan.NewFilter(h, node)
		}
		projExprs := make([]expr.Expr, len(items))
		for i, it := range items {
			e, err := rewrite(it.e)
			if err != nil {
				return nil, err
			}
			if it.alias != "" {
				e = expr.As(e, it.alias)
			}
			projExprs[i] = e
		}
		node = plan.NewProject(projExprs, node)
	} else {
		// Plain projection; `SELECT *` keeps the child as-is when it is
		// the only item.
		if len(items) == 1 && items[0].star {
			// no projection node needed
		} else {
			var projExprs []expr.Expr
			for _, it := range items {
				if it.star {
					return nil, fmt.Errorf("sqlparser: mixed * and expressions in SELECT")
				}
				e := it.e
				if it.alias != "" {
					e = expr.As(e, it.alias)
				}
				projExprs = append(projExprs, e)
			}
			node = plan.NewProject(projExprs, node)
		}
	}

	if distinct {
		node = distinctOver(node, items)
	}

	orders, err := orderFn()
	if err != nil {
		return nil, err
	}
	if len(orders) > 0 {
		node = plan.NewSort(orders, node)
	}
	if limit >= 0 {
		node = plan.NewLimit(limit, node)
	}
	return node, nil
}

// distinctOver wraps node in a group-by-all-columns aggregate. Output
// column references come from the select list when available.
func distinctOver(node plan.Node, items []selectItem) plan.Node {
	var groups []expr.Expr
	for i, it := range items {
		if it.star {
			return node // DISTINCT * over unknown arity: leave as-is
		}
		name := it.alias
		if name == "" {
			name = plan.OutputName(it.e, i)
		}
		groups = append(groups, expr.C(name))
	}
	return plan.NewAggregate(groups, nil, node)
}
