// Package sqlparser implements the SQL front end: a hand-written lexer and
// recursive-descent parser for the subset the engine executes
// (SELECT ... FROM ... [JOIN ... ON ...] [WHERE] [GROUP BY] [HAVING]
// [ORDER BY] [LIMIT], UNION ALL), producing logical plans.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkNumber
	tkString
	tkSymbol
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; identifiers as written
	pos  int
}

func (t token) String() string {
	if t.kind == tkEOF {
		return "<eof>"
	}
	return t.text
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "JOIN": true, "INNER": true,
	"LEFT": true, "OUTER": true, "ON": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "IS": true, "ASC": true,
	"DESC": true, "COUNT": true, "SUM": true, "MIN": true, "MAX": true,
	"AVG": true, "DISTINCT": true, "UNION": true, "ALL": true, "TRUE": true,
	"FALSE": true, "CAST": true, "CROSS": true, "BETWEEN": true, "IN": true,
	"LIKE": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true, "CREATE": true, "DROP": true, "REFRESH": true,
	"MATERIALIZED": true, "VIEW": true, "EXPLAIN": true, "ANALYZE": true,
}

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				out = append(out, token{kind: tkKeyword, text: upper, pos: start})
			} else {
				out = append(out, token{kind: tkIdent, text: word, pos: start})
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			start := i
			seenDot := false
			for i < n && (unicode.IsDigit(rune(input[i])) || (input[i] == '.' && !seenDot)) {
				if input[i] == '.' {
					seenDot = true
				}
				i++
			}
			out = append(out, token{kind: tkNumber, text: input[start:i], pos: start})
		case c == '\'':
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlparser: unterminated string at %d", i)
			}
			out = append(out, token{kind: tkString, text: sb.String(), pos: i})
		default:
			// Multi-char operators first.
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				out = append(out, token{kind: tkSymbol, text: two, pos: i})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '(', ')', ',', '*', '+', '-', '/', '%', '.', '?':
				out = append(out, token{kind: tkSymbol, text: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("sqlparser: unexpected character %q at %d", c, i)
			}
		}
	}
	out = append(out, token{kind: tkEOF, pos: n})
	return out, nil
}
