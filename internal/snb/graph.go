package snb

import (
	"fmt"

	"indexeddf"
	"indexeddf/internal/sqltypes"
)

// Graph is a loaded social network, queryable through either engine.
// In vanilla mode the five tables are columnar-cached DataFrames; in
// indexed mode each access path additionally gets an Indexed DataFrame
// copy (the paper's library supports one index per DataFrame, so distinct
// access paths are distinct indexed frames).
type Graph struct {
	Sess    *indexeddf.Session
	Indexed bool

	Person, Knows, Post, Comment, Forum *indexeddf.DataFrame

	// Indexed access paths (nil in vanilla mode).
	PersonByID       *indexeddf.DataFrame // person(id)
	KnowsByP1        *indexeddf.DataFrame // knows(person1Id)
	PostByID         *indexeddf.DataFrame // post(id)
	PostByCreator    *indexeddf.DataFrame // post(creatorId)
	CommentByID      *indexeddf.DataFrame // comment(id)
	CommentByCreator *indexeddf.DataFrame // comment(creatorId)
	CommentByReplyP  *indexeddf.DataFrame // comment(replyOfPost)
	CommentByReplyC  *indexeddf.DataFrame // comment(replyOfComment)
	ForumByID        *indexeddf.DataFrame // forum(id)
}

// Load builds a Graph in the session from a dataset. Vanilla tables are
// always created and cached (Figure 2/3's baseline runs on cached
// dataframes); indexed=true additionally builds the indexed copies.
func Load(sess *indexeddf.Session, d *Dataset, indexed bool) (*Graph, error) {
	g := &Graph{Sess: sess, Indexed: indexed}
	var err error
	load := func(name string, schema *sqltypes.Schema, rows []sqltypes.Row) *indexeddf.DataFrame {
		if err != nil {
			return nil
		}
		df, e := sess.CreateTable(name, schema, rows)
		if e != nil {
			err = e
			return nil
		}
		if _, e := df.Cache(); e != nil {
			err = e
			return nil
		}
		return df
	}
	g.Person = load("person", PersonSchema(), d.Persons)
	g.Knows = load("knows", KnowsSchema(), d.Knows)
	g.Post = load("post", PostSchema(), d.Posts)
	g.Comment = load("comment", CommentSchema(), d.Comments)
	g.Forum = load("forum", ForumSchema(), d.Forums)
	if err != nil {
		return nil, err
	}
	if !indexed {
		return g, nil
	}
	index := func(base *indexeddf.DataFrame, col, alias string) *indexeddf.DataFrame {
		if err != nil {
			return nil
		}
		idf, e := base.CreateIndexOn(col)
		if e != nil {
			err = e
			return nil
		}
		// Queries reference columns with the base table's qualifier
		// ("person.id"), so re-alias the indexed relation accordingly.
		idf, e = idf.As(alias)
		if e != nil {
			err = e
			return nil
		}
		return idf
	}
	g.PersonByID = index(g.Person, "id", "person")
	g.KnowsByP1 = index(g.Knows, "person1Id", "knows")
	g.PostByID = index(g.Post, "id", "post")
	g.PostByCreator = index(g.Post, "creatorId", "post")
	g.CommentByID = index(g.Comment, "id", "comment")
	g.CommentByCreator = index(g.Comment, "creatorId", "comment")
	g.CommentByReplyP = index(g.Comment, "replyOfPost", "comment")
	g.CommentByReplyC = index(g.Comment, "replyOfComment", "comment")
	g.ForumByID = index(g.Forum, "id", "forum")
	if err != nil {
		return nil, err
	}
	return g, nil
}

// personFrame returns the access path for person-by-id filters.
func (g *Graph) personFrame() *indexeddf.DataFrame {
	if g.Indexed {
		return g.PersonByID
	}
	return g.Person
}

func (g *Graph) knowsFrame() *indexeddf.DataFrame {
	if g.Indexed {
		return g.KnowsByP1
	}
	return g.Knows
}

func (g *Graph) postByIDFrame() *indexeddf.DataFrame {
	if g.Indexed {
		return g.PostByID
	}
	return g.Post
}

func (g *Graph) postByCreatorFrame() *indexeddf.DataFrame {
	if g.Indexed {
		return g.PostByCreator
	}
	return g.Post
}

func (g *Graph) commentByIDFrame() *indexeddf.DataFrame {
	if g.Indexed {
		return g.CommentByID
	}
	return g.Comment
}

func (g *Graph) commentByCreatorFrame() *indexeddf.DataFrame {
	if g.Indexed {
		return g.CommentByCreator
	}
	return g.Comment
}

func (g *Graph) forumFrame() *indexeddf.DataFrame {
	if g.Indexed {
		return g.ForumByID
	}
	return g.Forum
}

// lookupPost fetches one post row by id, or nil.
func (g *Graph) lookupPost(id int64) (sqltypes.Row, error) {
	rows, err := g.postByIDFrame().Filter(indexeddf.Eq(indexeddf.Col("id"), indexeddf.Lit(id))).Collect()
	if err != nil || len(rows) == 0 {
		return nil, err
	}
	return rows[0], nil
}

// lookupComment fetches one comment row by id, or nil.
func (g *Graph) lookupComment(id int64) (sqltypes.Row, error) {
	rows, err := g.commentByIDFrame().Filter(indexeddf.Eq(indexeddf.Col("id"), indexeddf.Lit(id))).Collect()
	if err != nil || len(rows) == 0 {
		return nil, err
	}
	return rows[0], nil
}

// lookupMessage resolves an id from either message table; isPost reports
// which one matched.
func (g *Graph) lookupMessage(id int64) (row sqltypes.Row, isPost bool, err error) {
	if id >= CommentIDBase {
		row, err = g.lookupComment(id)
		return row, false, err
	}
	row, err = g.lookupPost(id)
	return row, true, err
}

// rootPost walks a comment's reply chain to its root post — the driver-side
// loop of indexed lookups IS2/IS6 need (each hop is one point lookup, which
// is where the index pays off).
func (g *Graph) rootPost(commentRow sqltypes.Row) (sqltypes.Row, error) {
	const (
		colReplyOfPost    = 7
		colReplyOfComment = 8
	)
	cur := commentRow
	for hop := 0; hop < 64; hop++ {
		if p := cur[colReplyOfPost]; !p.IsNull() {
			return g.lookupPost(p.Int64Val())
		}
		c := cur[colReplyOfComment]
		if c.IsNull() {
			return nil, fmt.Errorf("snb: comment %v has no parent", cur[0])
		}
		next, err := g.lookupComment(c.Int64Val())
		if err != nil {
			return nil, err
		}
		if next == nil {
			return nil, fmt.Errorf("snb: dangling reply chain at %v", c)
		}
		cur = next
	}
	return nil, fmt.Errorf("snb: reply chain too deep")
}
