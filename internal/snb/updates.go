package snb

import (
	"math/rand"

	"indexeddf"
	"indexeddf/internal/sqltypes"
)

// UpdateKind classifies update-stream events, mirroring the SNB interactive
// insert workload the paper's demo feeds through Kafka.
type UpdateKind uint8

// Update kinds.
const (
	AddKnows UpdateKind = iota
	AddPost
	AddComment
)

// Update is one insert event.
type Update struct {
	Kind UpdateKind
	Row  sqltypes.Row
}

// UpdateStream deterministically generates insert events against an
// existing dataset: new knows edges, posts and comments from existing
// persons, with monotonically increasing timestamps (like the SNB update
// stream).
type UpdateStream struct {
	rng      *rand.Rand
	nPersons int
	nextPost int64
	nextComm int64
	nForums  int
	now      int64
}

// NewUpdateStream builds a stream continuing after d.
func NewUpdateStream(d *Dataset, seed int64) *UpdateStream {
	return &UpdateStream{
		rng:      rand.New(rand.NewSource(seed)),
		nPersons: len(d.Persons),
		nextPost: PostIDBase + int64(len(d.Posts)) + 1,
		nextComm: CommentIDBase + int64(len(d.Comments)) + 1,
		nForums:  len(d.Forums),
		now:      epoch2018 + yearMicros,
	}
}

// Next produces the next insert event.
func (u *UpdateStream) Next() Update {
	u.now += int64(u.rng.Intn(1_000_000) + 1)
	person := func() int64 { return PersonIDBase + int64(u.rng.Intn(u.nPersons)+1) }
	switch u.rng.Intn(10) {
	case 0, 1, 2: // 30% new knows edge
		return Update{Kind: AddKnows, Row: sqltypes.Row{
			sqltypes.NewInt64(person()),
			sqltypes.NewInt64(person()),
			sqltypes.NewTimestamp(u.now),
		}}
	case 3, 4, 5: // 30% new post
		id := u.nextPost
		u.nextPost++
		content := randomContent(u.rng, 3+u.rng.Intn(20))
		return Update{Kind: AddPost, Row: sqltypes.Row{
			sqltypes.NewInt64(id),
			sqltypes.NewInt64(person()),
			sqltypes.NewInt64(ForumIDBase + int64(u.rng.Intn(u.nForums)+1)),
			sqltypes.NewTimestamp(u.now),
			sqltypes.NewString(randomIP(u.rng)),
			sqltypes.NewString(browsers[u.rng.Intn(len(browsers))]),
			sqltypes.NewString(languages[u.rng.Intn(len(languages))]),
			sqltypes.NewString(content),
			sqltypes.NewInt32(int32(len(content))),
		}}
	default: // 40% new comment replying to a recent post
		id := u.nextComm
		u.nextComm++
		content := randomContent(u.rng, 2+u.rng.Intn(12))
		target := PostIDBase + 1 + u.rng.Int63n(u.nextPost-PostIDBase-1)
		return Update{Kind: AddComment, Row: sqltypes.Row{
			sqltypes.NewInt64(id),
			sqltypes.NewInt64(person()),
			sqltypes.NewTimestamp(u.now),
			sqltypes.NewString(randomIP(u.rng)),
			sqltypes.NewString(browsers[u.rng.Intn(len(browsers))]),
			sqltypes.NewString(content),
			sqltypes.NewInt32(int32(len(content))),
			sqltypes.NewInt64(target),
			sqltypes.Null,
		}}
	}
}

// Batch produces n events.
func (u *UpdateStream) Batch(n int) []Update {
	out := make([]Update, n)
	for i := range out {
		out[i] = u.Next()
	}
	return out
}

// Apply routes an update batch into the graph (both the vanilla tables and,
// when present, every indexed copy — each is an independent Indexed
// DataFrame per the paper's one-index-per-frame model).
func Apply(g *Graph, updates []Update) error {
	var knows, posts, comments []sqltypes.Row
	for _, u := range updates {
		switch u.Kind {
		case AddKnows:
			knows = append(knows, u.Row)
		case AddPost:
			posts = append(posts, u.Row)
		case AddComment:
			comments = append(comments, u.Row)
		}
	}
	if len(knows) > 0 {
		if _, err := g.Knows.AppendRowsSlice(knows); err != nil {
			return err
		}
		if g.Indexed {
			if _, err := g.KnowsByP1.AppendRowsSlice(knows); err != nil {
				return err
			}
		}
	}
	if len(posts) > 0 {
		if _, err := g.Post.AppendRowsSlice(posts); err != nil {
			return err
		}
		if g.Indexed {
			for _, f := range []*indexeddf.DataFrame{g.PostByID, g.PostByCreator} {
				if _, err := f.AppendRowsSlice(posts); err != nil {
					return err
				}
			}
		}
	}
	if len(comments) > 0 {
		if _, err := g.Comment.AppendRowsSlice(comments); err != nil {
			return err
		}
		if g.Indexed {
			for _, f := range []*indexeddf.DataFrame{g.CommentByID, g.CommentByCreator, g.CommentByReplyP, g.CommentByReplyC} {
				if _, err := f.AppendRowsSlice(comments); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
