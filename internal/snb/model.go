// Package snb provides a scaled-down, deterministic substitute for the LDBC
// Social Network Benchmark Datagen the paper evaluates on (Erling et al.,
// SIGMOD 2015), plus the seven SNB "simple read" queries (SQ1–SQ7 in the
// paper, LDBC interactive short reads IS1–IS7) implemented on the public
// DataFrame API for both the vanilla and the Indexed DataFrame engine.
//
// Substitution note (DESIGN.md §2): the real SF300 dataset needs a cluster
// and the Hadoop-based Datagen; this generator preserves the schema and the
// skewed degree distributions the queries exercise at laptop scale.
package snb

import (
	"indexeddf/internal/sqltypes"
)

// ID namespaces keep entity ids disjoint like LDBC's.
const (
	PersonIDBase  = int64(0)
	ForumIDBase   = int64(100_000_000)
	PostIDBase    = int64(1_000_000_000)
	CommentIDBase = int64(2_000_000_000)
)

// PersonSchema mirrors LDBC person.
func PersonSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "firstName", Type: sqltypes.String},
		sqltypes.Field{Name: "lastName", Type: sqltypes.String},
		sqltypes.Field{Name: "gender", Type: sqltypes.String},
		sqltypes.Field{Name: "birthday", Type: sqltypes.Timestamp},
		sqltypes.Field{Name: "creationDate", Type: sqltypes.Timestamp},
		sqltypes.Field{Name: "locationIP", Type: sqltypes.String},
		sqltypes.Field{Name: "browserUsed", Type: sqltypes.String},
		sqltypes.Field{Name: "cityId", Type: sqltypes.Int64},
	)
}

// KnowsSchema mirrors LDBC person_knows_person.
func KnowsSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "person1Id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "person2Id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "creationDate", Type: sqltypes.Timestamp},
	)
}

// PostSchema mirrors LDBC post.
func PostSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "creatorId", Type: sqltypes.Int64},
		sqltypes.Field{Name: "forumId", Type: sqltypes.Int64},
		sqltypes.Field{Name: "creationDate", Type: sqltypes.Timestamp},
		sqltypes.Field{Name: "locationIP", Type: sqltypes.String},
		sqltypes.Field{Name: "browserUsed", Type: sqltypes.String},
		sqltypes.Field{Name: "language", Type: sqltypes.String},
		sqltypes.Field{Name: "content", Type: sqltypes.String},
		sqltypes.Field{Name: "length", Type: sqltypes.Int32},
	)
}

// CommentSchema mirrors LDBC comment; exactly one of replyOfPost /
// replyOfComment is set.
func CommentSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "creatorId", Type: sqltypes.Int64},
		sqltypes.Field{Name: "creationDate", Type: sqltypes.Timestamp},
		sqltypes.Field{Name: "locationIP", Type: sqltypes.String},
		sqltypes.Field{Name: "browserUsed", Type: sqltypes.String},
		sqltypes.Field{Name: "content", Type: sqltypes.String},
		sqltypes.Field{Name: "length", Type: sqltypes.Int32},
		sqltypes.Field{Name: "replyOfPost", Type: sqltypes.Int64, Nullable: true},
		sqltypes.Field{Name: "replyOfComment", Type: sqltypes.Int64, Nullable: true},
	)
}

// ForumSchema mirrors LDBC forum.
func ForumSchema() *sqltypes.Schema {
	return sqltypes.NewSchema(
		sqltypes.Field{Name: "id", Type: sqltypes.Int64},
		sqltypes.Field{Name: "title", Type: sqltypes.String},
		sqltypes.Field{Name: "moderatorId", Type: sqltypes.Int64},
		sqltypes.Field{Name: "creationDate", Type: sqltypes.Timestamp},
	)
}

// Dataset is one generated social network.
type Dataset struct {
	Persons  []sqltypes.Row
	Knows    []sqltypes.Row
	Posts    []sqltypes.Row
	Comments []sqltypes.Row
	Forums   []sqltypes.Row
}

// Rows returns the total row count.
func (d *Dataset) Rows() int {
	return len(d.Persons) + len(d.Knows) + len(d.Posts) + len(d.Comments) + len(d.Forums)
}
