package snb

import (
	"sort"

	"indexeddf"
	"indexeddf/internal/sqltypes"
)

// The seven SNB simple read queries (the paper's SQ1–SQ7; LDBC interactive
// short reads IS1–IS7). Every query runs through the public DataFrame API,
// so the only difference between engines is which physical operators the
// index-aware rules select.

// IS1 — profile of a person: given a person id, fetch firstName, lastName,
// birthday, locationIP, browserUsed, cityId, gender, creationDate.
func IS1(g *Graph, personID int64) ([]sqltypes.Row, error) {
	return g.personFrame().
		Filter(indexeddf.Eq(indexeddf.Col("id"), indexeddf.Lit(personID))).
		SelectCols("firstName", "lastName", "birthday", "locationIP",
			"browserUsed", "cityId", "gender", "creationDate").
		Collect()
}

// IS2 — recent messages of a person: the person's 10 newest messages with,
// for comments, the root post and its author. Output: messageId, content,
// creationDate, rootPostId, rootAuthorId, rootAuthorFirst, rootAuthorLast.
func IS2(g *Graph, personID int64) ([]sqltypes.Row, error) {
	eq := func(col string) indexeddf.Expr {
		return indexeddf.Eq(indexeddf.Col(col), indexeddf.Lit(personID))
	}
	posts, err := g.postByCreatorFrame().Filter(eq("creatorId")).
		SelectCols("id", "content", "creationDate").
		Collect()
	if err != nil {
		return nil, err
	}
	comments, err := g.commentByCreatorFrame().Filter(eq("creatorId")).
		SelectCols("id", "content", "creationDate").
		Collect()
	if err != nil {
		return nil, err
	}
	type msg struct {
		row    sqltypes.Row
		isPost bool
	}
	all := make([]msg, 0, len(posts)+len(comments))
	for _, r := range posts {
		all = append(all, msg{row: r, isPost: true})
	}
	for _, r := range comments {
		all = append(all, msg{row: r})
	}
	// Newest first, id desc ties.
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].row, all[j].row
		if c := sqltypes.Compare(a[2], b[2]); c != 0 {
			return c > 0
		}
		return sqltypes.Compare(a[0], b[0]) > 0
	})
	if len(all) > 10 {
		all = all[:10]
	}
	out := make([]sqltypes.Row, 0, len(all))
	for _, m := range all {
		var root sqltypes.Row
		if m.isPost {
			root, err = g.lookupPost(m.row[0].Int64Val())
		} else {
			var cRow sqltypes.Row
			cRow, err = g.lookupComment(m.row[0].Int64Val())
			if err == nil && cRow != nil {
				root, err = g.rootPost(cRow)
			}
		}
		if err != nil {
			return nil, err
		}
		if root == nil {
			continue
		}
		author, err := IS1(g, root[1].Int64Val())
		if err != nil {
			return nil, err
		}
		first, last := sqltypes.Null, sqltypes.Null
		if len(author) > 0 {
			first, last = author[0][0], author[0][1]
		}
		out = append(out, sqltypes.Row{
			m.row[0], m.row[1], m.row[2], root[0], root[1], first, last,
		})
	}
	return out, nil
}

// IS3 — friends of a person: all persons the given person knows, with the
// friendship creation date, newest friendships first.
func IS3(g *Graph, personID int64) ([]sqltypes.Row, error) {
	return g.knowsFrame().
		Filter(indexeddf.Eq(indexeddf.Col("person1Id"), indexeddf.Lit(personID))).
		Join(g.personFrame(), indexeddf.Eq(indexeddf.Col("person2Id"), indexeddf.Col("person.id"))).
		SelectCols("person2Id", "firstName", "lastName", "knows.creationDate").
		OrderBy("-creationDate", "person2Id").
		Collect()
}

// IS4 — content of a message: given a message id, its creationDate and
// content.
func IS4(g *Graph, messageID int64) ([]sqltypes.Row, error) {
	frame := g.postByIDFrame()
	if messageID >= CommentIDBase {
		frame = g.commentByIDFrame()
	}
	return frame.
		Filter(indexeddf.Eq(indexeddf.Col("id"), indexeddf.Lit(messageID))).
		SelectCols("creationDate", "content").
		Collect()
}

// IS5 — creator of a message: given a message id, its author's id and name.
func IS5(g *Graph, messageID int64) ([]sqltypes.Row, error) {
	frame := g.postByIDFrame()
	if messageID >= CommentIDBase {
		frame = g.commentByIDFrame()
	}
	return frame.
		Filter(indexeddf.Eq(indexeddf.Col("id"), indexeddf.Lit(messageID))).
		Join(g.personFrame(), indexeddf.Eq(indexeddf.Col("creatorId"), indexeddf.Col("person.id"))).
		SelectCols("person.id", "firstName", "lastName").
		Collect()
}

// IS6 — forum of a message: walk a comment's reply chain to the root post,
// then return the containing forum and its moderator.
func IS6(g *Graph, messageID int64) ([]sqltypes.Row, error) {
	msg, isPost, err := g.lookupMessage(messageID)
	if err != nil || msg == nil {
		return nil, err
	}
	post := msg
	if !isPost {
		post, err = g.rootPost(msg)
		if err != nil || post == nil {
			return nil, err
		}
	}
	forumID := post[2].Int64Val()
	return g.forumFrame().
		Filter(indexeddf.Eq(indexeddf.Col("id"), indexeddf.Lit(forumID))).
		Join(g.personFrame(), indexeddf.Eq(indexeddf.Col("moderatorId"), indexeddf.Col("person.id"))).
		SelectCols("forum.id", "title", "person.id", "firstName", "lastName").
		Collect()
}

// IS7 — replies to a message: all comments replying to it, each with its
// author and whether that author knows the original message's author.
// Output: commentId, content, creationDate, authorId, firstName, lastName,
// knowsOriginalAuthor.
func IS7(g *Graph, messageID int64) ([]sqltypes.Row, error) {
	msg, _, err := g.lookupMessage(messageID)
	if err != nil || msg == nil {
		return nil, err
	}
	origAuthor := msg[1].Int64Val()
	var replies *indexeddf.DataFrame
	if messageID >= CommentIDBase {
		frame := g.Comment
		if g.Indexed {
			frame = g.CommentByReplyC
		}
		replies = frame.Filter(indexeddf.Eq(indexeddf.Col("replyOfComment"), indexeddf.Lit(messageID)))
	} else {
		frame := g.Comment
		if g.Indexed {
			frame = g.CommentByReplyP
		}
		replies = frame.Filter(indexeddf.Eq(indexeddf.Col("replyOfPost"), indexeddf.Lit(messageID)))
	}
	rows, err := replies.
		Join(g.personFrame(), indexeddf.Eq(indexeddf.Col("creatorId"), indexeddf.Col("person.id"))).
		SelectCols("comment.id", "content", "comment.creationDate", "person.id", "firstName", "lastName").
		OrderBy("-comment.creationDate", "comment.id").
		Collect()
	if err != nil {
		return nil, err
	}
	out := make([]sqltypes.Row, 0, len(rows))
	for _, r := range rows {
		authorID := r[3].Int64Val()
		knows, err := g.knowsFrame().
			Filter(indexeddf.And(
				indexeddf.Eq(indexeddf.Col("person1Id"), indexeddf.Lit(authorID)),
				indexeddf.Eq(indexeddf.Col("person2Id"), indexeddf.Lit(origAuthor)))).
			Collect()
		if err != nil {
			return nil, err
		}
		out = append(out, append(r.Clone(), sqltypes.NewBool(len(knows) > 0)))
	}
	return out, nil
}

// Query identifies one of the seven short reads.
type Query struct {
	Name string
	// Run executes the query against g with the given parameter id.
	Run func(g *Graph, id int64) ([]sqltypes.Row, error)
	// ParamKind selects the parameter domain: "person" or "message".
	ParamKind string
}

// Queries lists SQ1–SQ7 in paper order.
func Queries() []Query {
	return []Query{
		{Name: "SQ1", Run: IS1, ParamKind: "person"},
		{Name: "SQ2", Run: IS2, ParamKind: "person"},
		{Name: "SQ3", Run: IS3, ParamKind: "person"},
		{Name: "SQ4", Run: IS4, ParamKind: "message"},
		{Name: "SQ5", Run: IS5, ParamKind: "message"},
		{Name: "SQ6", Run: IS6, ParamKind: "message"},
		{Name: "SQ7", Run: IS7, ParamKind: "message"},
	}
}

// DefaultParams picks deterministic query parameters from the dataset:
// n person ids and n message ids (alternating posts and comments).
func DefaultParams(d *Dataset, n int) map[string][]int64 {
	persons := make([]int64, 0, n)
	for i := 0; i < n && i < len(d.Persons); i++ {
		persons = append(persons, d.Persons[(i*37)%len(d.Persons)][0].Int64Val())
	}
	messages := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 && len(d.Posts) > 0 {
			messages = append(messages, d.Posts[(i*31)%len(d.Posts)][0].Int64Val())
		} else if len(d.Comments) > 0 {
			messages = append(messages, d.Comments[(i*29)%len(d.Comments)][0].Int64Val())
		}
	}
	return map[string][]int64{"person": persons, "message": messages}
}

// FriendsOfFriendsTop is a complex-read-style workload beyond the seven
// short reads (in the spirit of LDBC interactive complex query 3): the most
// frequently reachable people within two hops of a person, excluding the
// person, ranked by path count. Exercises a self-join on the knows table —
// the join-intensive graph navigation the paper's introduction motivates.
func FriendsOfFriendsTop(g *Graph, personID int64, limit int64) ([]sqltypes.Row, error) {
	k1, err := g.knowsFrame().As("k1")
	if err != nil {
		return nil, err
	}
	k2, err := g.knowsFrame().As("k2")
	if err != nil {
		return nil, err
	}
	return k1.
		Filter(indexeddf.Eq(indexeddf.Col("k1.person1Id"), indexeddf.Lit(personID))).
		Join(k2, indexeddf.Eq(indexeddf.Col("k1.person2Id"), indexeddf.Col("k2.person1Id"))).
		Filter(indexeddf.Ne(indexeddf.Col("k2.person2Id"), indexeddf.Lit(personID))).
		GroupBy("k2.person2Id").Count().
		OrderBy("-count", "person2Id").
		Limit(limit).
		Collect()
}
