package snb

import (
	"fmt"
	"math/rand"

	"indexeddf/internal/sqltypes"
)

// Config parameterizes the generator. ScaleFactor 1.0 produces roughly
// 1k persons / 15k knows edges / 3k posts / 6k comments — shaped like LDBC
// at laptop scale.
type Config struct {
	ScaleFactor float64
	Seed        int64
	// KnowsPerPerson is the mean out-degree (default 15; LDBC-ish).
	KnowsPerPerson int
	// PostsPerPerson is the mean post count (default 3).
	PostsPerPerson int
	// CommentsPerPerson is the mean comment count (default 6).
	CommentsPerPerson int
}

func (c Config) withDefaults() Config {
	if c.ScaleFactor <= 0 {
		c.ScaleFactor = 1
	}
	if c.KnowsPerPerson <= 0 {
		c.KnowsPerPerson = 15
	}
	if c.PostsPerPerson <= 0 {
		c.PostsPerPerson = 3
	}
	if c.CommentsPerPerson <= 0 {
		c.CommentsPerPerson = 6
	}
	return c
}

var (
	firstNames = []string{"Jan", "Alex", "Bogdan", "Ankur", "Peter", "Maria", "Wei",
		"Carmen", "Ali", "Jun", "Rafael", "Ivan", "Otto", "Hans", "Emma", "Noah",
		"Lucas", "Mia", "Yang", "Ken", "Abdul", "Bryn", "Chen", "Eli", "Fatima"}
	lastNames = []string{"Smith", "Khan", "Li", "Perez", "Kumar", "Garcia", "Yang",
		"Hoffmann", "Bos", "Novak", "Jensen", "Costa", "Brown", "Zhang", "Berg",
		"Petrov", "Murphy", "Silva", "Sato", "Okafor"}
	browsers  = []string{"Firefox", "Chrome", "Safari", "Internet Explorer", "Opera"}
	languages = []string{"en", "nl", "de", "zh", "es", "ro", "fr"}
	words     = []string{"about", "graph", "query", "spark", "index", "social",
		"network", "photo", "maybe", "great", "trip", "concert", "paper", "data",
		"frame", "cache", "stream", "latency", "join", "lookup", "update", "fast"}
)

// epoch2018 is 2018-01-01 00:00:00 UTC in microseconds.
const epoch2018 = int64(1514764800) * 1_000_000

// yearMicros is one year in microseconds.
const yearMicros = int64(365*24*3600) * 1_000_000

// Generate builds a deterministic dataset.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	nPersons := int(1000 * cfg.ScaleFactor)
	if nPersons < 10 {
		nPersons = 10
	}
	d := &Dataset{}

	// Persons, creation dates increasing with id.
	for i := 0; i < nPersons; i++ {
		id := PersonIDBase + int64(i+1)
		created := epoch2018 + int64(i)*yearMicros/int64(nPersons) + rng.Int63n(3_600_000_000)
		d.Persons = append(d.Persons, sqltypes.Row{
			sqltypes.NewInt64(id),
			sqltypes.NewString(firstNames[rng.Intn(len(firstNames))]),
			sqltypes.NewString(lastNames[rng.Intn(len(lastNames))]),
			sqltypes.NewString([]string{"male", "female"}[rng.Intn(2)]),
			sqltypes.NewTimestamp(epoch2018 - int64(18+rng.Intn(40))*yearMicros),
			sqltypes.NewTimestamp(created),
			sqltypes.NewString(randomIP(rng)),
			sqltypes.NewString(browsers[rng.Intn(len(browsers))]),
			sqltypes.NewInt64(int64(rng.Intn(100))),
		})
	}

	// Knows edges with a skewed (power-law-ish) degree distribution:
	// person popularity ~ Zipf over targets, degree ~ geometric around the
	// mean — the hub-and-spoke shape SNB exhibits.
	zipf := rand.NewZipf(rng, 1.2, 4, uint64(nPersons-1))
	seen := map[[2]int64]bool{}
	for i := 0; i < nPersons; i++ {
		p1 := PersonIDBase + int64(i+1)
		deg := 1 + rng.Intn(2*cfg.KnowsPerPerson)
		for e := 0; e < deg; e++ {
			p2 := PersonIDBase + int64(zipf.Uint64()+1)
			if p2 == p1 {
				continue
			}
			k := [2]int64{p1, p2}
			if seen[k] {
				continue
			}
			seen[k] = true
			created := epoch2018 + rng.Int63n(yearMicros)
			d.Knows = append(d.Knows, sqltypes.Row{
				sqltypes.NewInt64(p1),
				sqltypes.NewInt64(p2),
				sqltypes.NewTimestamp(created),
			})
		}
	}

	// Forums.
	nForums := nPersons/10 + 1
	for i := 0; i < nForums; i++ {
		id := ForumIDBase + int64(i+1)
		d.Forums = append(d.Forums, sqltypes.Row{
			sqltypes.NewInt64(id),
			sqltypes.NewString(fmt.Sprintf("Wall of %s %d", words[rng.Intn(len(words))], i)),
			sqltypes.NewInt64(PersonIDBase + int64(rng.Intn(nPersons)+1)),
			sqltypes.NewTimestamp(epoch2018 + rng.Int63n(yearMicros)),
		})
	}

	// Posts: authorship skewed by the same Zipf.
	nPosts := nPersons * cfg.PostsPerPerson
	for i := 0; i < nPosts; i++ {
		id := PostIDBase + int64(i+1)
		creator := PersonIDBase + int64(zipf.Uint64()+1)
		content := randomContent(rng, 3+rng.Intn(20))
		d.Posts = append(d.Posts, sqltypes.Row{
			sqltypes.NewInt64(id),
			sqltypes.NewInt64(creator),
			sqltypes.NewInt64(ForumIDBase + int64(rng.Intn(nForums)+1)),
			sqltypes.NewTimestamp(epoch2018 + int64(i)*yearMicros/int64(nPosts+1) + rng.Int63n(3_600_000_000)),
			sqltypes.NewString(randomIP(rng)),
			sqltypes.NewString(browsers[rng.Intn(len(browsers))]),
			sqltypes.NewString(languages[rng.Intn(len(languages))]),
			sqltypes.NewString(content),
			sqltypes.NewInt32(int32(len(content))),
		})
	}

	// Comments: 70% reply to a post, 30% to an earlier comment (bounded
	// reply-chain depth, like SNB threads).
	nComments := nPersons * cfg.CommentsPerPerson
	for i := 0; i < nComments; i++ {
		id := CommentIDBase + int64(i+1)
		creator := PersonIDBase + int64(zipf.Uint64()+1)
		content := randomContent(rng, 2+rng.Intn(12))
		replyOfPost := sqltypes.Null
		replyOfComment := sqltypes.Null
		if i == 0 || rng.Float64() < 0.7 {
			replyOfPost = sqltypes.NewInt64(PostIDBase + int64(rng.Intn(nPosts)+1))
		} else {
			replyOfComment = sqltypes.NewInt64(CommentIDBase + int64(rng.Intn(i)+1))
		}
		d.Comments = append(d.Comments, sqltypes.Row{
			sqltypes.NewInt64(id),
			sqltypes.NewInt64(creator),
			sqltypes.NewTimestamp(epoch2018 + int64(i)*yearMicros/int64(nComments+1) + rng.Int63n(3_600_000_000)),
			sqltypes.NewString(randomIP(rng)),
			sqltypes.NewString(browsers[rng.Intn(len(browsers))]),
			sqltypes.NewString(content),
			sqltypes.NewInt32(int32(len(content))),
			replyOfPost,
			replyOfComment,
		})
	}
	return d
}

func randomIP(rng *rand.Rand) string {
	return fmt.Sprintf("%d.%d.%d.%d", 1+rng.Intn(254), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254))
}

func randomContent(rng *rand.Rand, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += words[rng.Intn(len(words))]
	}
	return out
}
