package snb

import (
	"sort"
	"strings"
	"testing"

	"indexeddf"
	"indexeddf/internal/sqltypes"
)

func genSmall(t *testing.T) *Dataset {
	t.Helper()
	return Generate(Config{ScaleFactor: 0.2, Seed: 42})
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{ScaleFactor: 0.1, Seed: 7})
	b := Generate(Config{ScaleFactor: 0.1, Seed: 7})
	if a.Rows() != b.Rows() {
		t.Fatalf("non-deterministic row counts: %d vs %d", a.Rows(), b.Rows())
	}
	for i := range a.Persons {
		if a.Persons[i].String() != b.Persons[i].String() {
			t.Fatalf("person %d differs", i)
		}
	}
	c := Generate(Config{ScaleFactor: 0.1, Seed: 8})
	if a.Persons[0].String() == c.Persons[0].String() &&
		a.Persons[1].String() == c.Persons[1].String() {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateShape(t *testing.T) {
	d := genSmall(t)
	nP := len(d.Persons)
	if nP != 200 {
		t.Fatalf("persons = %d, want 200", nP)
	}
	if len(d.Knows) < 5*nP {
		t.Fatalf("knows = %d, too sparse", len(d.Knows))
	}
	if len(d.Posts) != 3*nP || len(d.Comments) != 6*nP {
		t.Fatalf("posts=%d comments=%d", len(d.Posts), len(d.Comments))
	}
	// Degree skew: max out-degree should be much larger than the mean
	// (Zipf-distributed targets create popular hubs on the in-side; check
	// in-degree skew).
	in := map[int64]int{}
	for _, k := range d.Knows {
		in[k[1].Int64Val()]++
	}
	max := 0
	for _, c := range in {
		if c > max {
			max = c
		}
	}
	mean := len(d.Knows) / nP
	if max < 3*mean {
		t.Fatalf("in-degree not skewed: max=%d mean=%d", max, mean)
	}
	// Comment reply chains terminate at posts.
	for _, c := range d.Comments {
		if c[7].IsNull() && c[8].IsNull() {
			t.Fatal("comment with no parent")
		}
	}
}

func loadBoth(t *testing.T, d *Dataset) (vanilla, indexed *Graph) {
	t.Helper()
	vs := indexeddf.NewSession(indexeddf.Config{TablePartitions: 3})
	v, err := Load(vs, d, false)
	if err != nil {
		t.Fatal(err)
	}
	is := indexeddf.NewSession(indexeddf.Config{TablePartitions: 3})
	ix, err := Load(is, d, true)
	if err != nil {
		t.Fatal(err)
	}
	return v, ix
}

func canonRows(rows []sqltypes.Row) string {
	s := make([]string, len(rows))
	for i, r := range rows {
		s[i] = r.String()
	}
	sort.Strings(s)
	return strings.Join(s, "\n")
}

// TestQueriesAgreeAcrossEngines is the central correctness check: every
// short read returns identical results on vanilla Spark-like execution and
// on the Indexed DataFrame.
func TestQueriesAgreeAcrossEngines(t *testing.T) {
	d := genSmall(t)
	vanilla, indexed := loadBoth(t, d)
	params := DefaultParams(d, 5)
	for _, q := range Queries() {
		ids := params[q.ParamKind]
		for _, id := range ids {
			vRows, err := q.Run(vanilla, id)
			if err != nil {
				t.Fatalf("%s(%d) vanilla: %v", q.Name, id, err)
			}
			iRows, err := q.Run(indexed, id)
			if err != nil {
				t.Fatalf("%s(%d) indexed: %v", q.Name, id, err)
			}
			if canonRows(vRows) != canonRows(iRows) {
				t.Errorf("%s(%d): engines disagree\nvanilla (%d rows):\n%s\nindexed (%d rows):\n%s",
					q.Name, id, len(vRows), canonRows(vRows), len(iRows), canonRows(iRows))
			}
		}
	}
}

func TestIS1Profile(t *testing.T) {
	d := genSmall(t)
	_, g := loadBoth(t, d)
	rows, err := IS1(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0]) != 8 {
		t.Fatalf("IS1 = %v", rows)
	}
	none, err := IS1(g, 999999)
	if err != nil || len(none) != 0 {
		t.Fatalf("IS1(missing) = %v, %v", none, err)
	}
}

func TestIS2RecentMessagesOrderedAndCapped(t *testing.T) {
	d := genSmall(t)
	_, g := loadBoth(t, d)
	// Find a prolific author.
	counts := map[int64]int{}
	for _, p := range d.Posts {
		counts[p[1].Int64Val()]++
	}
	for _, c := range d.Comments {
		counts[c[1].Int64Val()]++
	}
	var busy int64
	best := 0
	for id, n := range counts {
		if n > best {
			best, busy = n, id
		}
	}
	rows, err := IS2(g, busy)
	if err != nil {
		t.Fatal(err)
	}
	if best >= 10 && len(rows) != 10 {
		t.Fatalf("IS2 returned %d rows for author with %d messages", len(rows), best)
	}
	for i := 1; i < len(rows); i++ {
		if sqltypes.Compare(rows[i-1][2], rows[i][2]) < 0 {
			t.Fatal("IS2 not sorted newest first")
		}
	}
	// Root authors resolve.
	for _, r := range rows {
		if r[3].IsNull() || r[4].IsNull() {
			t.Fatalf("IS2 row without root post: %v", r)
		}
	}
}

func TestIS3FriendsSorted(t *testing.T) {
	d := genSmall(t)
	_, g := loadBoth(t, d)
	// Person 1 has at least one friend by construction (degree >= 1).
	rows, err := IS3(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if sqltypes.Compare(rows[i-1][3], rows[i][3]) < 0 {
			t.Fatal("IS3 not sorted by friendship date desc")
		}
	}
}

func TestIS4IS5OnPostAndComment(t *testing.T) {
	d := genSmall(t)
	_, g := loadBoth(t, d)
	postID := d.Posts[0][0].Int64Val()
	commentID := d.Comments[0][0].Int64Val()
	for _, id := range []int64{postID, commentID} {
		rows, err := IS4(g, id)
		if err != nil || len(rows) != 1 {
			t.Fatalf("IS4(%d) = %v, %v", id, rows, err)
		}
		rows5, err := IS5(g, id)
		if err != nil || len(rows5) != 1 {
			t.Fatalf("IS5(%d) = %v, %v", id, rows5, err)
		}
	}
}

func TestIS6FindsForum(t *testing.T) {
	d := genSmall(t)
	_, g := loadBoth(t, d)
	// A comment that replies to a comment exercises the chain walk.
	var deep int64
	for _, c := range d.Comments {
		if !c[8].IsNull() {
			deep = c[0].Int64Val()
			break
		}
	}
	if deep == 0 {
		t.Skip("no nested comment in dataset")
	}
	rows, err := IS6(g, deep)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || len(rows[0]) != 5 {
		t.Fatalf("IS6 = %v", rows)
	}
}

func TestIS7RepliesWithKnowsFlag(t *testing.T) {
	d := genSmall(t)
	_, g := loadBoth(t, d)
	// Find a post with replies.
	replied := map[int64]bool{}
	for _, c := range d.Comments {
		if !c[7].IsNull() {
			replied[c[7].Int64Val()] = true
		}
	}
	var target int64
	for id := range replied {
		target = id
		break
	}
	rows, err := IS7(g, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("IS7 found no replies for a replied-to post")
	}
	for _, r := range rows {
		if len(r) != 7 || r[6].T != sqltypes.Bool {
			t.Fatalf("IS7 row shape: %v", r)
		}
	}
}

func TestUpdateStreamAndApply(t *testing.T) {
	d := genSmall(t)
	_, g := loadBoth(t, d)
	before, err := g.KnowsByP1.Count()
	if err != nil {
		t.Fatal(err)
	}
	us := NewUpdateStream(d, 1)
	batch := us.Batch(200)
	kinds := map[UpdateKind]int{}
	for _, u := range batch {
		kinds[u.Kind]++
	}
	if kinds[AddKnows] == 0 || kinds[AddPost] == 0 || kinds[AddComment] == 0 {
		t.Fatalf("update mix degenerate: %v", kinds)
	}
	if err := Apply(g, batch); err != nil {
		t.Fatal(err)
	}
	after, err := g.KnowsByP1.Count()
	if err != nil {
		t.Fatal(err)
	}
	if after != before+int64(kinds[AddKnows]) {
		t.Fatalf("knows count %d -> %d, want +%d", before, after, kinds[AddKnows])
	}
	// The vanilla side stays in sync too.
	vAfter, err := g.Knows.Count()
	if err != nil || vAfter != after {
		t.Fatalf("vanilla knows = %d, indexed = %d", vAfter, after)
	}
	// Queries still agree after updates on both engines of the same graph.
	rows, err := IS3(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = rows
}

func TestFriendsOfFriendsTopAgreesAcrossEngines(t *testing.T) {
	d := genSmall(t)
	vanilla, indexed := loadBoth(t, d)
	for _, id := range []int64{1, 7, 42} {
		v, err := FriendsOfFriendsTop(vanilla, id, 10)
		if err != nil {
			t.Fatalf("vanilla fof(%d): %v", id, err)
		}
		ix, err := FriendsOfFriendsTop(indexed, id, 10)
		if err != nil {
			t.Fatalf("indexed fof(%d): %v", id, err)
		}
		if canonRows(v) != canonRows(ix) {
			t.Fatalf("fof(%d) engines disagree:\n%s\nvs\n%s", id, canonRows(v), canonRows(ix))
		}
		// The person themself is excluded.
		for _, r := range v {
			if r[0].Int64Val() == id {
				t.Fatalf("fof(%d) contains the person", id)
			}
		}
		// Ranked by count desc.
		for i := 1; i < len(v); i++ {
			if v[i-1][1].Int64Val() < v[i][1].Int64Val() {
				t.Fatalf("fof(%d) not ranked: %v", id, v)
			}
		}
	}
}
