package indexeddf_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"indexeddf"
)

// The adaptive filter cascade must be invisible except for speed:
// whatever order conjuncts evaluate in, the surviving rows — and their
// order — are exactly the static fused kernel's. These tests pin that
// equivalence on the inputs where an unsound reorder would show:
// null-heavy columns (three-valued logic), short-circuit-dependent
// predicates (a conjunct that divides by a column another conjunct
// guards), and the single-conjunct degenerate case.

// adaptiveTestData builds rows with many NULLs and zeros so conjunct
// reordering has semantic traps to step into.
func adaptiveTestData(rng *rand.Rand, n int) ([]indexeddf.Row, *indexeddf.Schema) {
	schema := indexeddf.NewSchema(
		indexeddf.Field{Name: "id", Type: indexeddf.Int64},
		indexeddf.Field{Name: "x", Type: indexeddf.Int64, Nullable: true},
		indexeddf.Field{Name: "y", Type: indexeddf.Float64, Nullable: true},
		indexeddf.Field{Name: "tag", Type: indexeddf.String, Nullable: true},
	)
	rows := make([]indexeddf.Row, n)
	for i := range rows {
		var x, y, tag indexeddf.Value
		switch rng.Intn(4) {
		case 0:
			x = indexeddf.V(nil)
		case 1:
			x = indexeddf.V(int64(0)) // division trap
		default:
			x = indexeddf.V(int64(rng.Intn(50) - 10))
		}
		if rng.Intn(3) == 0 {
			y = indexeddf.V(nil)
		} else {
			y = indexeddf.V(rng.NormFloat64() * 20)
		}
		if rng.Intn(5) == 0 {
			tag = indexeddf.V(nil)
		} else {
			tag = indexeddf.V(fmt.Sprintf("t%d", rng.Intn(6)))
		}
		rows[i] = indexeddf.Row{indexeddf.V(int64(i)), x, y, tag}
	}
	return rows, schema
}

func adaptiveSession(t *testing.T, adaptive bool, rows []indexeddf.Row, schema *indexeddf.Schema) *indexeddf.Session {
	t.Helper()
	sess := indexeddf.NewSession(indexeddf.Config{
		// Statistics off so both sessions plan the identical conjunct
		// order; the only difference under test is the runtime cascade.
		DisableStats:          true,
		DisableAdaptiveFilter: !adaptive,
	})
	df, err := sess.CreateTable("t", schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.Cache(); err != nil {
		t.Fatal(err)
	}
	return sess
}

func TestAdaptiveFilterEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rows, schema := adaptiveTestData(rng, 40_000)
	adaptiveSess := adaptiveSession(t, true, rows, schema)
	staticSess := adaptiveSession(t, false, rows, schema)

	queries := []string{
		// Null-heavy multi-conjunct mixes: every conjunct sees NULLs.
		"SELECT id, x, y FROM t WHERE x > 3 AND y < 10.0 AND tag <> 't3'",
		"SELECT id FROM t WHERE tag = 't1' AND x <= 20 AND y >= -15.0 AND x <> 4",
		"SELECT id, tag FROM t WHERE x IS NOT NULL AND y IS NOT NULL AND x < 30 AND y > -50.0",
		// Short-circuit-dependent: 100/x traps on x=0 rows unless the
		// guard holds — division by zero must yield NULL (dropped), not
		// an error, in either evaluation order.
		"SELECT id FROM t WHERE x <> 0 AND 100 / x > 5 AND y < 25.0",
		// Deliberately mis-ordered: expensive lax string conjunct first,
		// cheap selective equality last.
		"SELECT id FROM t WHERE tag <> 'zzz' AND y < 100.0 AND x >= -10 AND x = 7",
		// Single conjunct: the cascade degenerates to the fused path.
		"SELECT id FROM t WHERE x = 5",
		// OR keeps the conjunction un-splittable at the top level.
		"SELECT id FROM t WHERE (x = 1 OR x = 2) AND y > 0.0 AND tag = 't0'",
	}
	for _, q := range queries {
		adf, err := adaptiveSess.SQL(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		sdf, err := staticSess.SQL(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := adf.Collect()
		if err != nil {
			t.Fatalf("%s: adaptive: %v", q, err)
		}
		want, err := sdf.Collect()
		if err != nil {
			t.Fatalf("%s: static: %v", q, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: adaptive result diverges from static\n adaptive: %d rows\n static: %d rows",
				q, len(got), len(want))
		}
	}
}

// TestAdaptiveFilterRandomizedEquivalence fuzzes conjunct combinations
// over fresh random data; adaptive and static engines must agree
// bit-identically on every query.
func TestAdaptiveFilterRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	rows, schema := adaptiveTestData(rng, 20_000)
	adaptiveSess := adaptiveSession(t, true, rows, schema)
	staticSess := adaptiveSession(t, false, rows, schema)

	conjPool := []string{
		"x > %d", "x < %d", "x = %d", "x <> %d",
		"y > %d.5", "y < %d.5",
		"tag = 't%d'", "tag <> 't%d'",
		"x IS NOT NULL", "y IS NOT NULL", "tag IS NULL",
		"100 / x > %d", // traps unless another conjunct guards x<>0
	}
	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(3)
		conjs := make([]string, 0, k+1)
		usesDiv := false
		for i := 0; i < k; i++ {
			c := conjPool[rng.Intn(len(conjPool))]
			if strings.Contains(c, "/") {
				usesDiv = true
			}
			if strings.Contains(c, "%d") {
				c = fmt.Sprintf(c, rng.Intn(20)-5)
			}
			conjs = append(conjs, c)
		}
		if usesDiv && rng.Intn(2) == 0 {
			conjs = append(conjs, "x <> 0")
		}
		q := "SELECT id, x, tag FROM t WHERE " + strings.Join(conjs, " AND ")
		adf, err := adaptiveSess.SQL(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		sdf, err := staticSess.SQL(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		got, err := adf.Collect()
		if err != nil {
			t.Fatalf("%s: adaptive: %v", q, err)
		}
		want, err := sdf.Collect()
		if err != nil {
			t.Fatalf("%s: static: %v", q, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: adaptive %d rows != static %d rows", q, len(got), len(want))
		}
	}
}

// TestAdaptiveFilterReordered pins the EXPLAIN ANALYZE annotation: a
// deliberately mis-ordered conjunct list (statistics off, so the
// planner leaves it alone) must converge with the cheap selective
// equality promoted ahead of the lax string conjunct.
func TestAdaptiveFilterReordered(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	rows, schema := adaptiveTestData(rng, 60_000)
	sess := adaptiveSession(t, true, rows, schema)
	// c0: string, keeps nearly everything. c1: lax range. c2: selective
	// equality — the cascade should pull it to the front.
	df, err := sess.SQL("SELECT id FROM t WHERE tag <> 'zzz' AND y < 1000.0 AND x = 7")
	if err != nil {
		t.Fatal(err)
	}
	out, err := df.ExplainAnalyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "reordered=c0,c1,c2→") {
		t.Fatalf("EXPLAIN ANALYZE missing reordered annotation:\n%s", out)
	}
	if !strings.Contains(out, "→c2,") {
		t.Fatalf("adaptive order did not promote the selective equality first:\n%s", out)
	}
}

// TestAnalyzeTableStatement drives ANALYZE TABLE through SQL: it must
// succeed on both table kinds, heal delete-invalidated statistics, and
// reject unknown tables.
func TestAnalyzeTableStatement(t *testing.T) {
	sess := indexeddf.NewSession(indexeddf.Config{})
	schema := indexeddf.NewSchema(
		indexeddf.Field{Name: "k", Type: indexeddf.Int64},
		indexeddf.Field{Name: "v", Type: indexeddf.String},
	)
	rows := make([]indexeddf.Row, 100)
	for i := range rows {
		rows[i] = indexeddf.Row{indexeddf.V(int64(i)), indexeddf.V(fmt.Sprintf("v%d", i%10))}
	}
	if _, err := sess.CreateTable("plain", schema, rows); err != nil {
		t.Fatal(err)
	}
	idf, err := sess.CreateIndexedTable("indexed", schema, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idf.AppendRowsSlice(rows); err != nil {
		t.Fatal(err)
	}

	for _, name := range []string{"plain", "indexed"} {
		df, err := sess.SQL("ANALYZE TABLE " + name)
		if err != nil {
			t.Fatalf("ANALYZE TABLE %s: %v", name, err)
		}
		out, err := df.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || !strings.Contains(out[0][0].String(), "analyzed table "+name) {
			t.Fatalf("unexpected ANALYZE output: %v", out)
		}
	}

	// Deleting invalidates incremental statistics; ANALYZE rebuilds them.
	idf.IndexedCore().Delete(indexeddf.V(int64(3)))
	if _, err := sess.SQL("ANALYZE TABLE indexed"); err != nil {
		t.Fatal(err)
	}

	if _, err := sess.SQL("ANALYZE TABLE missing"); err == nil {
		t.Fatal("ANALYZE TABLE on unknown table must fail")
	}
	if _, err := sess.SQL("ANALYZE missing"); err == nil {
		t.Fatal("ANALYZE without TABLE must fail to parse")
	}
}
