// Ablation benchmarks for the design choices DESIGN.md calls out:
// broadcast vs shuffle probe sides in the indexed join, row-batch size,
// and the Ctrie against a locked-map index (including snapshot cost).
package indexeddf_test

import (
	"fmt"
	"sync"
	"testing"

	"indexeddf"
	"indexeddf/internal/bench"
	"indexeddf/internal/core"
	"indexeddf/internal/ctrie"
	"indexeddf/internal/rowbatch"
	"indexeddf/internal/snb"
	"indexeddf/internal/sqltypes"
)

// BenchmarkAblationIndexedJoinProbeStrategy compares the paper's two probe
// strategies for the indexed join: shuffling the probe side to the index
// partitioning vs broadcasting it (§2 "Scheduling Physical Operators").
// The broadcast threshold flips the planner's choice.
func BenchmarkAblationIndexedJoinProbeStrategy(b *testing.B) {
	d := snb.Generate(snb.Config{ScaleFactor: benchSF, Seed: 21})
	run := func(b *testing.B, threshold int64) {
		sess := indexeddf.NewSession(indexeddf.Config{BroadcastThreshold: threshold})
		g, err := snb.Load(sess, d, true)
		if err != nil {
			b.Fatal(err)
		}
		join := g.KnowsByP1.Join(g.PersonByID,
			indexeddf.Eq(indexeddf.Col("person1Id"), indexeddf.Col("person.id")))
		if _, err := join.Collect(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := join.Collect(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("shuffle", func(b *testing.B) { run(b, 1) })
	b.Run("broadcast", func(b *testing.B) { run(b, 1_000_000) })
}

// BenchmarkAblationRowBatchSize sweeps the row-batch size (the paper's
// configurable 4 MB default) over append+lookup workloads.
func BenchmarkAblationRowBatchSize(b *testing.B) {
	for _, size := range []int{64 << 10, 1 << 20, rowbatch.DefaultBatchSize} {
		size := size
		b.Run(fmt.Sprintf("%dKiB", size/1024), func(b *testing.B) {
			schema := snb.KnowsSchema()
			t, err := core.NewIndexedTable(schema, 0, core.Options{NumPartitions: 4, BatchSize: size})
			if err != nil {
				b.Fatal(err)
			}
			rows := make([]sqltypes.Row, 1000)
			for i := range rows {
				rows[i] = sqltypes.Row{
					sqltypes.NewInt64(int64(i % 100)),
					sqltypes.NewInt64(int64(i)),
					sqltypes.NewTimestamp(int64(i)),
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := t.Append(rows); err != nil {
					b.Fatal(err)
				}
				snap := t.Snapshot()
				if _, err := snap.GetRows(sqltypes.NewInt64(int64(i % 100))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCtrieVsLockedMap motivates the Ctrie: point updates and
// snapshot cost against an RWMutex-guarded map whose snapshot must copy.
func BenchmarkAblationCtrieVsLockedMap(b *testing.B) {
	const keys = 100_000
	hasher := func(k uint64) uint64 {
		z := k + 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	b.Run("ctrie/insert", func(b *testing.B) {
		c := ctrie.New[uint64, uint64](hasher)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Insert(uint64(i%keys), uint64(i))
		}
	})
	b.Run("lockedmap/insert", func(b *testing.B) {
		m := map[uint64]uint64{}
		var mu sync.RWMutex
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mu.Lock()
			m[uint64(i%keys)] = uint64(i)
			mu.Unlock()
		}
	})
	b.Run("ctrie/snapshot", func(b *testing.B) {
		c := ctrie.New[uint64, uint64](hasher)
		for i := uint64(0); i < keys; i++ {
			c.Insert(i, i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap := c.ReadOnlySnapshot()
			if _, ok := snap.Lookup(uint64(i % keys)); !ok {
				b.Fatal("missing key")
			}
		}
	})
	b.Run("lockedmap/snapshot", func(b *testing.B) {
		m := map[uint64]uint64{}
		var mu sync.RWMutex
		for i := uint64(0); i < keys; i++ {
			m[i] = i
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// A consistent snapshot of a mutable map requires a copy.
			mu.RLock()
			snap := make(map[uint64]uint64, len(m))
			for k, v := range m {
				snap[k] = v
			}
			mu.RUnlock()
			if _, ok := snap[uint64(i%keys)]; !ok {
				b.Fatal("missing key")
			}
		}
	})
}

// BenchmarkAblationLookupVsScanCrossover sweeps chain length: index lookup
// cost grows with rows-per-key while the scan stays flat, locating the
// regime where the index wins.
func BenchmarkAblationLookupVsScanCrossover(b *testing.B) {
	const totalRows = 50_000
	for _, rowsPerKey := range []int{1, 10, 100, 1000} {
		rowsPerKey := rowsPerKey
		b.Run(fmt.Sprintf("chain%d", rowsPerKey), func(b *testing.B) {
			schema := snb.KnowsSchema()
			t, err := core.NewIndexedTable(schema, 0, core.Options{NumPartitions: 4})
			if err != nil {
				b.Fatal(err)
			}
			nKeys := totalRows / rowsPerKey
			rows := make([]sqltypes.Row, 0, totalRows)
			for i := 0; i < totalRows; i++ {
				rows = append(rows, sqltypes.Row{
					sqltypes.NewInt64(int64(i % nKeys)),
					sqltypes.NewInt64(int64(i)),
					sqltypes.NewTimestamp(int64(i)),
				})
			}
			if err := t.Append(rows); err != nil {
				b.Fatal(err)
			}
			snap := t.Snapshot()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n := 0
				err := snap.LookupEach(sqltypes.NewInt64(int64(i%nKeys)), func(sqltypes.Row) bool {
					n++
					return true
				})
				if err != nil || n != rowsPerKey {
					b.Fatalf("chain walk = %d rows, %v", n, err)
				}
			}
		})
	}
}

// BenchmarkAblationUpdateRateVsQueryLatency measures SQ3 latency as the
// concurrent append batch size grows (Figure 2/3 are static; this probes
// the "data moving all the time" regime).
func BenchmarkAblationUpdateRateVsQueryLatency(b *testing.B) {
	for _, batchSize := range []int{0, 10, 100} {
		batchSize := batchSize
		b.Run(fmt.Sprintf("batch%d", batchSize), func(b *testing.B) {
			d := snb.Generate(snb.Config{ScaleFactor: 0.3, Seed: 31})
			sess := indexeddf.NewSession(indexeddf.Config{})
			g, err := snb.Load(sess, d, true)
			if err != nil {
				b.Fatal(err)
			}
			us := snb.NewUpdateStream(d, 7)
			personID := d.Persons[3][0].Int64Val()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if batchSize > 0 {
					if err := snb.Apply(g, us.Batch(batchSize)); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := snb.IS3(g, personID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEnvironmentBuild measures index construction (CreateIndex) —
// the shuffle+build cost the paper amortizes across queries.
func BenchmarkEnvironmentBuild(b *testing.B) {
	d := snb.Generate(snb.Config{ScaleFactor: 0.3, Seed: 41})
	b.Run("CreateIndex/knows", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sess := indexeddf.NewSession(indexeddf.Config{})
			knows, err := sess.CreateTable("knows", snb.KnowsSchema(), d.Knows)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := knows.CreateIndexOn("person1Id"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ColumnarCache/knows", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sess := indexeddf.NewSession(indexeddf.Config{})
			knows, err := sess.CreateTable("knows", snb.KnowsSchema(), d.Knows)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := knows.Cache(); err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = bench.EnvConfig{}
}

// BenchmarkAblationProjectionRowWidth explains Figure 2's projection result:
// single-column projection over the narrow knows table (3 small columns)
// vs the wide person table (9 columns with strings). The columnar cache
// touches only the projected vector; the row store must walk whole records,
// so its disadvantage grows with row width.
func BenchmarkAblationProjectionRowWidth(b *testing.B) {
	d := snb.Generate(snb.Config{ScaleFactor: 1, Seed: 51})
	sessV := indexeddf.NewSession(indexeddf.Config{})
	vanilla, err := snb.Load(sessV, d, false)
	if err != nil {
		b.Fatal(err)
	}
	sessI := indexeddf.NewSession(indexeddf.Config{})
	indexed, err := snb.Load(sessI, d, true)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name           string
		vanillaF, idxF *indexeddf.DataFrame
		col            string
	}{
		{"narrow-knows", vanilla.Knows, indexed.KnowsByP1, "person2Id"},
		{"wide-person", vanilla.Person, indexed.PersonByID, "cityId"},
	}
	for _, c := range cases {
		c := c
		run := func(b *testing.B, df *indexeddf.DataFrame) {
			q := df.SelectCols(c.col)
			if _, err := q.Collect(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := q.Collect(); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(c.name+"/IndexedDF", func(b *testing.B) { run(b, c.idxF) })
		b.Run(c.name+"/Spark", func(b *testing.B) { run(b, c.vanillaF) })
	}
}
