package indexeddf

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"indexeddf/internal/memory"
	"indexeddf/internal/physical"
	"indexeddf/internal/sqlparser"
	"indexeddf/internal/sqltypes"
)

// Stmt is a prepared SQL statement: parsed, analyzed, optimized and
// physically planned once, with `?` placeholders bound per execution.
// Repeated executions skip the whole compilation pipeline — for an indexed
// point lookup that is most of the query's latency. A Stmt is safe for
// concurrent use: binding clones only the parameter-bearing fragments of
// the cached plan.
//
// The Stmt resolves its compiled plan through the session's plan cache on
// every execution, so catalog DDL (which purges the cache) transparently
// recompiles the statement against the current catalog: a statement over
// a dropped-and-recreated table sees the new table, and one over a
// dropped table fails with "table not found" instead of silently reading
// the dropped table's old state.
type Stmt struct {
	sess *Session
	sql  string // normalized text (the plan-cache key)
}

// Prepare compiles a SELECT statement with optional `?` placeholders. The
// compiled plan is cached in the session's bounded LRU plan cache keyed on
// the normalized statement text, so preparing the same statement again —
// from any goroutine — reuses the plan without touching the parser or the
// optimizer.
func (s *Session) Prepare(query string) (*Stmt, error) {
	key, err := sqlparser.Normalize(query)
	if err != nil {
		return nil, err
	}
	if _, _, err := s.prepareEntry(key); err != nil {
		return nil, err
	}
	return &Stmt{sess: s, sql: key}, nil
}

// prepareEntry returns the cached compiled plan for the normalized key
// (hit reports whether the cache answered), compiling and caching it on a
// miss. The normalized text is itself valid SQL, so recompilation after a
// cache purge parses it directly. The insert is generation-guarded: if a
// DDL purge lands while this compile is in flight, the freshly compiled
// (now possibly stale) plan is returned to this caller but not cached, so
// it cannot outlive the purge.
func (s *Session) prepareEntry(key string) (ent *planEntry, hit bool, err error) {
	ent, gen, ok := s.plans.getGen(key)
	if ok {
		return ent, true, nil
	}
	stmt, err := sqlparser.ParseStatement(key, s.resolveTable)
	if err != nil {
		return nil, false, err
	}
	if stmt.Kind != sqlparser.StmtSelect {
		return nil, false, fmt.Errorf("indexeddf: only SELECT statements can be prepared")
	}
	exec, err := s.compile(stmt.Select)
	if err != nil {
		return nil, false, err
	}
	ent = &planEntry{exec: exec, schema: exec.Schema(), numParams: stmt.NumParams,
		tables: physical.ReferencedTables(exec)}
	s.plans.putAt(key, ent, gen)
	return ent, false, nil
}

// entry resolves the statement's current compiled plan.
func (st *Stmt) entry() (*planEntry, error) {
	ent, _, err := st.sess.prepareEntry(st.sql)
	return ent, err
}

// SQLText returns the statement's normalized text.
func (st *Stmt) SQLText() string { return st.sql }

// NumParams returns the number of `?` placeholders.
func (st *Stmt) NumParams() int {
	ent, err := st.entry()
	if err != nil {
		return 0
	}
	return ent.numParams
}

// Schema returns the statement's result schema (nil if the statement no
// longer compiles against the current catalog).
func (st *Stmt) Schema() *sqltypes.Schema {
	ent, err := st.entry()
	if err != nil {
		return nil
	}
	return ent.schema
}

// Query executes the prepared plan with args bound to its placeholders (in
// lexical order) and returns a streaming cursor. The cached physical plan
// is reused as-is; only parameter-bearing fragments are rebuilt.
func (st *Stmt) Query(ctx context.Context, args ...any) (*Rows, error) {
	t0 := time.Now()
	ent, hit, err := st.sess.prepareEntry(st.sql)
	if err != nil {
		return nil, err
	}
	exec, err := st.bind(ent, args)
	if err != nil {
		return nil, err
	}
	return st.sess.queryExecMeta(ctx, exec, queryMeta{
		sql: st.sql, cacheHit: hit, planNs: time.Since(t0).Nanoseconds()})
}

// Collect executes the statement and materializes every row — Query plus a
// full drain, for callers that want the batch shape.
func (st *Stmt) Collect(ctx context.Context, args ...any) ([]sqltypes.Row, error) {
	rows, err := st.Query(ctx, args...)
	if err != nil {
		return nil, err
	}
	return drainRows(rows)
}

// bind substitutes args into the cached plan.
func (st *Stmt) bind(ent *planEntry, args []any) (physical.Exec, error) {
	vals := make([]sqltypes.Value, len(args))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, fmt.Errorf("indexeddf: argument %d: %w", i+1, err)
		}
		vals[i] = v
	}
	return physical.BindParams(ent.exec, ent.numParams, vals)
}

// toValue converts a native Go argument to an engine value.
func toValue(a any) (sqltypes.Value, error) {
	switch v := a.(type) {
	case nil:
		return sqltypes.Null, nil
	case sqltypes.Value:
		return v, nil
	case bool:
		return sqltypes.NewBool(v), nil
	case int:
		return sqltypes.NewInt64(int64(v)), nil
	case int32:
		return sqltypes.NewInt32(v), nil
	case int64:
		return sqltypes.NewInt64(v), nil
	case float64:
		return sqltypes.NewFloat64(v), nil
	case string:
		return sqltypes.NewString(v), nil
	case time.Time:
		return sqltypes.NewTimestampFromTime(v), nil
	default:
		return sqltypes.Null, fmt.Errorf("unsupported argument type %T", a)
	}
}

// drainRows materializes a cursor (closing it) — the compatibility shims'
// bridge from the streaming path back to []Row.
func drainRows(rows *Rows) ([]sqltypes.Row, error) {
	defer rows.Close()
	var out []sqltypes.Row
	for rows.Next() {
		out = append(out, rows.Row())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Plan cache

// planEntry is one compiled statement.
type planEntry struct {
	exec      physical.Exec
	schema    *sqltypes.Schema
	numParams int
	// tables are the catalog names the compiled plan reads (base tables,
	// indexed tables and materialized views) — the invalidation key.
	tables []string
}

// planCache is a bounded LRU of compiled statements keyed on normalized
// SQL. Compiled plans bake in catalog handles, so catalog DDL must purge
// them — but only the plans that reference the changed tables: entries
// carry their referenced-table set and DDL on one table leaves unrelated
// prepared plans warm. The generation counter lets an in-flight compile
// detect that any purge overtook it and skip caching the (possibly stale)
// plan.
type planCache struct {
	mu      sync.Mutex
	cap     int
	gen     int64      // bumped by purge
	order   *list.List // front = most recently used; values are *planCacheItem
	entries map[string]*list.Element
	// pool charges cached plans to the engine's memory budget (a flat
	// per-entry estimate); when the pool is saturated new plans are simply
	// not cached — the statement still runs, it just recompiles next time.
	pool *memory.Pool

	hits, misses int64
}

// planEntryBytes is the flat accounting estimate for one cached compiled
// plan (operator tree, schemas, referenced-table metadata).
const planEntryBytes = 32 << 10

type planCacheItem struct {
	key string
	ent *planEntry
}

func newPlanCache(capacity int, pool *memory.Pool) *planCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &planCache{cap: capacity, order: list.New(), entries: make(map[string]*list.Element), pool: pool}
}

// getGen looks the key up, also returning the cache generation observed so
// a later putAt can detect an intervening purge.
func (c *planCache) getGen(key string) (*planEntry, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, c.gen, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*planCacheItem).ent, c.gen, true
}

// putAt inserts ent unless the cache was purged since generation gen was
// observed (the entry would then reference pre-purge catalog state).
func (c *planCache) putAt(key string, ent *planEntry, gen int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*planCacheItem).ent = ent
		c.order.MoveToFront(el)
		return
	}
	if c.pool.ReserveBytes("session", "plan cache", planEntryBytes) != nil {
		return // pool saturated: run uncached rather than fail the query
	}
	c.entries[key] = c.order.PushFront(&planCacheItem{key: key, ent: ent})
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*planCacheItem).key)
		c.pool.ReleaseBytes(planEntryBytes)
	}
}

// purgeTables drops the cached plans referencing any of the named tables
// or views, leaving unrelated plans warm. The generation still bumps so an
// in-flight compile of any statement cannot cache a plan built against the
// pre-DDL catalog (it cannot know whether it references the changed name
// until compiled, so the guard stays conservative).
func (c *planCache) purgeTables(names ...string) {
	if len(names) == 0 {
		return
	}
	hit := make(map[string]bool, len(names))
	for _, n := range names {
		hit[n] = true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	var next *list.Element
	for el := c.order.Front(); el != nil; el = next {
		next = el.Next()
		item := el.Value.(*planCacheItem)
		for _, t := range item.ent.tables {
			if hit[t] {
				c.order.Remove(el)
				delete(c.entries, item.key)
				c.pool.ReleaseBytes(planEntryBytes)
				break
			}
		}
	}
}

func (c *planCache) stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// PlanCacheStats reports the session plan cache's hit/miss counters
// (benchmarks and tests assert reuse through it).
func (s *Session) PlanCacheStats() (hits, misses int64) { return s.plans.stats() }
