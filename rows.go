package indexeddf

import (
	"context"
	"fmt"
	"time"

	"indexeddf/internal/memory"
	"indexeddf/internal/obs"
	"indexeddf/internal/physical"
	"indexeddf/internal/plan"
	"indexeddf/internal/rdd"
	"indexeddf/internal/sqltypes"
)

// Rows is a streaming query cursor in the database/sql style: rows are
// pulled partition-at-a-time from the engine (batch-at-a-time inside
// vectorized subtrees) while the remaining partition tasks execute in the
// background, so the first row is available long before the job finishes
// and a Close mid-stream stops the remaining work.
//
//	rows, err := df.Query(ctx)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    var id int64
//	    var name string
//	    if err := rows.Scan(&id, &name); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// A Rows is owned by one goroutine; concurrent queries each get their own
// cursor (the Session is safe for concurrent use).
type Rows struct {
	schema *sqltypes.Schema
	stream *rdd.RowStream
	cancel context.CancelFunc // releases a session-timeout context, if any
	mem    *memory.Tracker    // the query's budget; closed on shutdown
	row    sqltypes.Row
	err    error
	closed bool

	// remaining is the LIMIT-aware row budget (-1 = unlimited). When the
	// plan root is a LIMIT n, the cursor runs the local-limit stage only
	// and truncates here: delivering the n-th row tears the stream down,
	// stopping the partition tasks a gather-based global limit would have
	// launched anyway.
	remaining int64

	// Observability: qs is nil when Config.DisableObservability is set
	// (every recording below then vanishes); sess/ec/exec let shutdown
	// settle registry counters and render the annotated plan.
	sess      *Session
	qs        *obs.QueryStats
	ec        *physical.ExecContext
	exec      physical.Exec
	start     time.Time
	delivered int64
	sawRow    bool
}

// Schema returns the result schema.
func (r *Rows) Schema() *sqltypes.Schema { return r.schema }

// Next advances to the next row, reporting whether one is available. It
// returns false at the end of the result set, after Close, and on error —
// check Err to tell the cases apart.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.remaining == 0 {
		r.shutdown() // LIMIT satisfied: stop the remaining partition tasks
		return false
	}
	row, err := r.stream.Next()
	if err != nil {
		r.err = err
		r.shutdown()
		return false
	}
	if row == nil {
		r.shutdown() // exhausted: release tasks and shuffle outputs eagerly
		return false
	}
	if r.remaining > 0 {
		r.remaining--
	}
	r.delivered++
	if !r.sawRow {
		r.sawRow = true
		r.qs.Event("first row", -1, time.Since(r.start))
	}
	r.row = row
	return true
}

// Stats returns the query's recorded runtime stats — per-operator actuals,
// task counts, shuffle bytes, memory peak. Nil when the session was built
// with Config.DisableObservability. Totals settle when the cursor closes;
// reading mid-stream sees live (partial) counts.
func (r *Rows) Stats() *obs.QueryStats { return r.qs }

// AnalyzeString renders the physical plan annotated with this execution's
// actuals (EXPLAIN ANALYZE's body) plus a query-level summary footer.
// Meaningful after the cursor is drained or closed; "" when observability
// is disabled.
func (r *Rows) AnalyzeString() string {
	if r.qs == nil {
		return ""
	}
	return r.analyzePlan() + r.qs.String()
}

// analyzePlan renders the annotated operator tree only.
func (r *Rows) analyzePlan() string {
	if r.ec == nil || r.exec == nil {
		return ""
	}
	return r.ec.AnalyzeString(r.exec)
}

// Row returns the current row (valid after a true Next).
func (r *Rows) Row() sqltypes.Row { return r.row }

// Scan copies the current row into dest, one pointer per column. Supported
// destinations: *int, *int32, *int64, *float64, *string, *bool,
// *time.Time, *sqltypes.Value and *any (which receives the native Go
// value, nil for NULL). Values convert with SQL implicit-cast semantics —
// a column that cannot cast to the destination's type (e.g. a
// non-numeric string into *int64) is an error, not a zero value. NULL
// scans as the destination's zero value except into *any and
// *sqltypes.Value.
func (r *Rows) Scan(dest ...any) error {
	if r.row == nil {
		return fmt.Errorf("indexeddf: Scan called without a successful Next")
	}
	if len(dest) != len(r.row) {
		return fmt.Errorf("indexeddf: Scan expects %d destinations, got %d", len(r.row), len(dest))
	}
	for i, d := range dest {
		if err := scanValue(r.row[i], d); err != nil {
			return fmt.Errorf("indexeddf: Scan column %d: %w", i, err)
		}
	}
	return nil
}

// Err returns the error that terminated iteration, if any: an execution
// error, or the context's error (context.Canceled /
// context.DeadlineExceeded) when the query was cancelled or timed out.
func (r *Rows) Err() error { return r.err }

// Close cancels any remaining partition tasks and releases the query's
// resources. It is idempotent and is called implicitly when the cursor is
// exhausted.
func (r *Rows) Close() error {
	r.shutdown()
	return nil
}

func (r *Rows) shutdown() {
	if r.closed {
		return
	}
	r.closed = true
	r.row = nil
	r.stream.Close()
	// Settle stats before the tracker closes: the memory peak is read off
	// the live tracker.
	if r.sess != nil {
		r.sess.finishQuery(r)
	}
	// Close after the stream: stopped tasks release their charges first,
	// then the tracker returns the query's whole grant to the engine pool.
	r.mem.Close()
	if r.cancel != nil {
		r.cancel()
	}
}

// scanValue converts one engine value into a Go destination pointer,
// casting to the destination's SQL type first so type mismatches surface
// as errors instead of zero values.
func scanValue(v sqltypes.Value, dest any) error {
	cast := func(t sqltypes.Type) (sqltypes.Value, error) {
		c, err := v.Cast(t)
		if err != nil {
			return sqltypes.Null, fmt.Errorf("cannot scan %s into %T: %w", v.T, dest, err)
		}
		return c, nil
	}
	switch d := dest.(type) {
	case *sqltypes.Value:
		*d = v
	case *any:
		*d = nativeValue(v)
	case *int64:
		c, err := cast(sqltypes.Int64)
		if err != nil {
			return err
		}
		*d = c.Int64Val()
	case *int32:
		c, err := cast(sqltypes.Int32)
		if err != nil {
			return err
		}
		*d = int32(c.Int64Val())
	case *int:
		c, err := cast(sqltypes.Int64)
		if err != nil {
			return err
		}
		*d = int(c.Int64Val())
	case *float64:
		c, err := cast(sqltypes.Float64)
		if err != nil {
			return err
		}
		*d = c.Float64Val()
	case *string:
		if v.IsNull() {
			*d = ""
		} else {
			*d = v.String()
		}
	case *bool:
		c, err := cast(sqltypes.Bool)
		if err != nil {
			return err
		}
		*d = !c.IsNull() && c.Bool()
	case *time.Time:
		if v.IsNull() {
			*d = time.Time{}
			return nil
		}
		c, err := cast(sqltypes.Timestamp)
		if err != nil {
			return err
		}
		*d = c.Time()
	default:
		return fmt.Errorf("unsupported destination type %T", dest)
	}
	return nil
}

// nativeValue maps an engine value onto its natural Go representation.
func nativeValue(v sqltypes.Value) any {
	switch v.T {
	case sqltypes.Unknown:
		return nil
	case sqltypes.Bool:
		return v.Bool()
	case sqltypes.Int32:
		return int32(v.Int64Val())
	case sqltypes.Int64:
		return v.Int64Val()
	case sqltypes.Float64:
		return v.Float64Val()
	case sqltypes.String:
		return v.StringVal()
	case sqltypes.Timestamp:
		return v.Time()
	default:
		return v.String()
	}
}

// ---------------------------------------------------------------------------
// Session-side cursor construction

// queryExec starts a compiled physical plan as a streaming cursor under
// ctx, applying the session's QueryTimeout when the caller set no
// deadline of its own.
func (s *Session) queryExec(ctx context.Context, exec physical.Exec) (*Rows, error) {
	return s.queryExecMeta(ctx, exec, queryMeta{})
}

// queryExecMeta is queryExec carrying entry-point context (statement text,
// parse/plan timings, plan-cache outcome) into the query's stats.
func (s *Session) queryExecMeta(ctx context.Context, exec physical.Exec, meta queryMeta) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var cancel context.CancelFunc
	if s.cfg.QueryTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		}
	}
	// One query id serves both accounting domains: the memory tracker and
	// the stats object (which also labels the query's pprof samples).
	queryID := s.mem.NextQueryID()
	s.qStarted.Inc()
	var qs *obs.QueryStats
	if !s.cfg.DisableObservability || meta.force {
		qs = obs.NewQueryStats(queryID, meta.sql, s.tracer)
		qs.ParseNs, qs.PlanNs, qs.CacheHit = meta.parseNs, meta.planNs, meta.cacheHit
		ctx = obs.WithQuery(ctx, qs)
		if meta.cacheHit {
			qs.Event("plan cache hit", -1, 0)
		} else {
			qs.Event("plan", -1, time.Duration(meta.parseNs+meta.planNs))
		}
	}
	// Memory budget: refuse admission while the engine pool is saturated,
	// then give the query its own tracker — every operator that buffers
	// state reserves against it and the whole grant returns on shutdown.
	var tracker *memory.Tracker
	if s.mem.Limit() > 0 || s.cfg.QueryMemoryLimit > 0 {
		if err := s.mem.Admit(queryID); err != nil {
			if cancel != nil {
				cancel()
			}
			s.qDone.Inc()
			s.qFailed.Inc()
			return nil, err
		}
		tracker = s.mem.NewTracker(queryID, s.cfg.QueryMemoryLimit)
		if s.spill != nil {
			// Out-of-core pressure valve: a failing reservation anywhere in
			// the query first evicts its sealed resident runs to disk.
			tr := tracker
			tracker.SetValve(func() bool { return s.spill.EvictFor(tr) })
		}
		ctx = memory.WithTracker(ctx, tracker)
	}
	fail := func(err error) (*Rows, error) {
		tracker.Close()
		if cancel != nil {
			cancel()
		}
		s.qDone.Inc()
		s.qFailed.Inc()
		return nil, err
	}
	ec := physical.NewExecContextCtx(ctx, s.ctx)
	ec.Query = qs
	var (
		r     rdd.RDD
		err   error
		limit int64 = -1
	)
	if lim, ok := exec.(*physical.LimitExec); ok && !meta.force {
		// A root LIMIT streams its local-limit stage and truncates at the
		// cursor, early-terminating the remaining partition tasks once n
		// rows are delivered instead of gathering every partition first.
		// EXPLAIN ANALYZE (meta.force) takes the full global-limit plan
		// instead: truncating at the cursor abandons operator iterators
		// mid-stream, losing their buffered counts.
		limit = lim.N
		r, err = lim.ExecuteStreaming(ec)
	} else {
		r, err = exec.Execute(ec)
	}
	if err != nil {
		return fail(err)
	}
	return &Rows{schema: exec.Schema(), stream: s.ctx.StreamJob(ctx, r), cancel: cancel, mem: tracker,
		remaining: limit, sess: s, qs: qs, ec: ec, exec: exec, start: time.Now()}, nil
}

// queryNode compiles a logical plan and starts it as a cursor.
func (s *Session) queryNode(ctx context.Context, n plan.Node) (*Rows, error) {
	t0 := time.Now()
	exec, err := s.compile(n)
	if err != nil {
		return nil, err
	}
	return s.queryExecMeta(ctx, exec, queryMeta{planNs: time.Since(t0).Nanoseconds()})
}
