package indexeddf

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	s, person, _ := newTestSession(t)
	var buf bytes.Buffer
	if err := person.OrderBy("id").WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "id,name,city,age\n") {
		t.Fatalf("header: %q", out[:40])
	}
	rows, err := ReadCSV(strings.NewReader(out), personSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[5][0] != V(int64(5)) || rows[5][1] != V("p05") {
		t.Fatalf("row 5 = %v", rows[5])
	}
	// Round-trip through a file and back into a table.
	path := filepath.Join(t.TempDir(), "person.csv")
	if err := person.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	df, err := s.CreateTableFromCSV("person2", path, personSchema())
	if err != nil {
		t.Fatal(err)
	}
	n, err := df.Count()
	if err != nil || n != 100 {
		t.Fatalf("reloaded count = %d, %v", n, err)
	}
}

func TestCSVNulls(t *testing.T) {
	schema := NewSchema(
		Field{Name: "a", Type: Int64},
		Field{Name: "b", Type: String, Nullable: true},
	)
	rows, err := ReadCSV(strings.NewReader("a,b\n1,\n2,x\n"), schema)
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0][1].IsNull() || rows[1][1].StringVal() != "x" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestCSVErrors(t *testing.T) {
	schema := NewSchema(Field{Name: "a", Type: Int64})
	if _, err := ReadCSV(strings.NewReader(""), schema); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a\nnotanumber\n"), schema); err == nil {
		t.Error("bad cell accepted")
	}
	if _, err := ReadCSVFile("/does/not/exist.csv", schema); err == nil {
		t.Error("missing file accepted")
	}
}
