package indexeddf

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"indexeddf/internal/testutil"
)

// bigSchema is a two-column schema for streaming tests.
func bigSchema() *Schema {
	return NewSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "val", Type: Int64},
	)
}

// newStreamSession creates a session tuned for streaming assertions: many
// partitions, a narrow task pool, and n rows in a vanilla table so the
// scan runs one task per partition.
func newStreamSession(t *testing.T, n, partitions, parallelism int) (*Session, *DataFrame) {
	t.Helper()
	s := NewSession(Config{TablePartitions: partitions, Parallelism: parallelism})
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = R(int64(i), int64(i%101))
	}
	df, err := s.CreateTable("big", bigSchema(), rows)
	if err != nil {
		t.Fatal(err)
	}
	return s, df
}

// TestCursorStreamsBeforeJobCompletes is the headline streaming property:
// a LIMIT-free scan of a 1M-row table yields its first row while well
// under 10% of partition tasks have completed.
func TestCursorStreamsBeforeJobCompletes(t *testing.T) {
	const nRows, nParts = 1_000_000, 64
	_, df := newStreamSession(t, nRows, nParts, 2)

	rows, err := df.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	completed := rows.Stats().TasksCompleted()
	if limit := int64(nParts / 10); completed >= limit {
		t.Fatalf("first row only after %d of %d partition tasks completed (want < %d)", completed, nParts, limit)
	}
	// Full drain still sees every row in Collect order.
	n := int64(1)
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != nRows {
		t.Fatalf("streamed %d rows, want %d", n, nRows)
	}
}

// TestLimitStreamingEarlyTerminates: a cursor over LIMIT n stops the job
// as soon as n rows are delivered — the remaining partition tasks are
// never launched, instead of every partition being gathered first.
func TestLimitStreamingEarlyTerminates(t *testing.T) {
	const nRows, nParts = 200_000, 64
	_, df := newStreamSession(t, nRows, nParts, 2)

	rows, err := df.Limit(5).Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []Row
	for rows.Next() {
		got = append(got, rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("LIMIT 5 cursor delivered %d rows", len(got))
	}
	// Delivering 5 rows needed the first partition (plus whatever the
	// 2-wide pool had already picked up) — nowhere near all 64.
	started := rows.Stats().TasksStarted()
	if started >= nParts/2 {
		t.Fatalf("LIMIT 5 launched %d of %d partition tasks (want far fewer)", started, nParts)
	}
	// The truncated stream keeps Collect-order semantics: the same rows a
	// full unlimited Collect puts first.
	all, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(all[:5]) {
		t.Fatalf("streamed LIMIT rows %v differ from Collect prefix %v", got, all[:5])
	}
}

// TestLimitStreamingEarlyTerminatesSorted: ORDER BY ... LIMIT n over a
// cursor. Every partition must contribute its top-n candidates (a global
// top-n can skip no partition), but the final merge is bounded: it stops
// the moment the merged heap has proven no later row enters the top n —
// n rows delivered — instead of draining the full sorted result. The
// merge runs as a lazy final-stage task: abandoning the cursor mid-merge
// leaves that task started but never completed.
func TestLimitStreamingEarlyTerminatesSorted(t *testing.T) {
	const nRows, nParts = 200_000, 32
	s, df := newStreamSession(t, nRows, nParts, 4)

	// Reference: the sorted prefix (same engine, full-sort plan).
	all, err := df.OrderBy("val", "id").Limit(5).Collect()
	if err != nil {
		t.Fatal(err)
	}

	baseStarted := s.Context().TasksStarted()
	rows, err := df.OrderBy("val", "id").Limit(5).Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var got []Row
	for len(got) < 3 && rows.Next() {
		got = append(got, rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(all[:3]) {
		t.Fatalf("streamed top-n rows %v differ from sorted prefix %v", got, all[:3])
	}
	// One heap task per partition plus the lazy merge task — no gather
	// stage, no global-limit stage.
	started := rows.Stats().TasksStarted()
	if started != nParts+1 {
		t.Fatalf("top-n cursor started %d tasks, want %d map + 1 merge", started, nParts)
	}
	// The per-query counter and the session-global counter count the same
	// task set.
	if global := s.Context().TasksStarted() - baseStarted; global != started {
		t.Fatalf("session-global task counter moved by %d, per-query counted %d", global, started)
	}
	// The abandoned merge never drained the remaining candidate rows: all
	// map tasks completed, the merge task did not.
	completed := rows.Stats().TasksCompleted()
	if completed != nParts {
		t.Fatalf("top-n cursor completed %d tasks, want %d (merge must stay incomplete)", completed, nParts)
	}
}

// TestCursorCloseCancelsRemainingTasks: closing the cursor after a few
// rows stops the remaining partition tasks (task counter).
func TestCursorCloseCancelsRemainingTasks(t *testing.T) {
	testutil.CheckGoroutines(t)
	const nRows, nParts = 400_000, 64
	_, df := newStreamSession(t, nRows, nParts, 2)

	rows, err := df.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10 && rows.Next(); i++ {
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	// Close waits for the workers to exit, so the counters are final.
	started := rows.Stats().TasksStarted()
	if started >= nParts/2 {
		t.Fatalf("%d of %d partition tasks started despite early Close (want far fewer)", started, nParts)
	}
	if rows.Next() {
		t.Fatal("Next returned true after Close")
	}
}

// TestQueryContextCancelMidStream: cancelling the caller's context
// surfaces context.Canceled from Rows.Err and stops the job.
func TestQueryContextCancelMidStream(t *testing.T) {
	testutil.CheckGoroutines(t)
	const nRows, nParts = 400_000, 64
	_, df := newStreamSession(t, nRows, nParts, 2)

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := df.Query(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	baseStarted := rows.Stats().TasksStarted()
	cancel()
	// Drain until the cancellation lands (buffered partitions may still
	// deliver a bounded number of rows).
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	if started := rows.Stats().TasksStarted() - baseStarted; started > nParts/2 {
		t.Fatalf("%d tasks started after cancel", started)
	}
}

// TestQueryDeadlineExceeded: an expired context surfaces
// context.DeadlineExceeded.
func TestQueryDeadlineExceeded(t *testing.T) {
	_, df := newStreamSession(t, 100_000, 16, 2)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // deadline certainly past
	rows, err := df.Query(ctx)
	if err != nil {
		// Compilation happens before streaming; an error here is fine too
		// as long as it is the deadline.
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Query error = %v, want DeadlineExceeded", err)
		}
		return
	}
	defer rows.Close()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want context.DeadlineExceeded", err)
	}
}

// TestConfigQueryTimeout: the session-wide default deadline applies when
// the caller passes a deadline-free context.
func TestConfigQueryTimeout(t *testing.T) {
	s := NewSession(Config{TablePartitions: 64, Parallelism: 2, QueryTimeout: time.Nanosecond})
	rows := make([]Row, 400_000)
	for i := range rows {
		rows[i] = R(int64(i), int64(i))
	}
	df, err := s.CreateTable("big", bigSchema(), rows)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := df.GroupBy("val").Count().Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for cur.Next() {
	}
	if err := cur.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want context.DeadlineExceeded from Config.QueryTimeout", err)
	}
}

// TestCollectMatchesQueryDrain: the Collect shim and a hand-drained cursor
// agree row for row (same partition order).
func TestCollectMatchesQueryDrain(t *testing.T) {
	_, df := newStreamSession(t, 10_000, 8, 4)
	want, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []Row
	for rows.Next() {
		got = append(got, rows.Row())
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor drained %d rows, Collect returned %d", len(got), len(want))
	}
	for i := range got {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("row %d: cursor %v vs Collect %v", i, got[i], want[i])
		}
	}
}

// TestRowsScan: Scan converts into native Go destinations.
func TestRowsScan(t *testing.T) {
	s := NewSession(Config{})
	df, err := s.CreateTable("t", NewSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "name", Type: String},
		Field{Name: "score", Type: Float64},
	), []Row{R(int64(7), "ada", 2.5)})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Query(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no row: %v", rows.Err())
	}
	var (
		id    int64
		name  string
		score float64
	)
	if err := rows.Scan(&id, &name, &score); err != nil {
		t.Fatal(err)
	}
	if id != 7 || name != "ada" || score != 2.5 {
		t.Fatalf("scanned (%d, %q, %v)", id, name, score)
	}
	if err := rows.Scan(&id); err == nil {
		t.Fatal("Scan with wrong arity did not fail")
	}
	// Type mismatches error instead of yielding zero values.
	var wrongType int64
	if err := rows.Scan(&wrongType, &name, &score); err != nil {
		t.Fatalf("int64 from Int64 column: %v", err)
	}
	if err := rows.Scan(&id, &wrongType, &score); err == nil {
		t.Fatal("scanning a non-numeric string into *int64 did not fail")
	}
}

// TestStmtSurvivesCatalogChange: a prepared statement recompiles after DDL
// instead of executing against a dropped table's stale handle.
func TestStmtSurvivesCatalogChange(t *testing.T) {
	s := newKeyedSession(t, 100)
	stmt, err := s.Prepare("SELECT city FROM users WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	before, err := stmt.Collect(context.Background(), int64(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 1 || before[0][0].String() != "nyc" {
		t.Fatalf("unexpected pre-DDL result %v", before)
	}
	s.DropTable("users")
	if _, err := stmt.Query(context.Background(), int64(3)); err == nil {
		t.Fatal("statement over a dropped table did not fail")
	}
	// Recreate with different contents: the statement must see the new table.
	df, err := s.CreateIndexedTable("users", NewSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "city", Type: String},
		Field{Name: "age", Type: Int64},
	), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.AppendRowsSlice([]Row{R(int64(3), "lisbon", int64(30))}); err != nil {
		t.Fatal(err)
	}
	after, err := stmt.Collect(context.Background(), int64(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 || after[0][0].String() != "lisbon" {
		t.Fatalf("statement did not recompile against the recreated table: %v", after)
	}
}

// newKeyedSession builds an indexed table keyed on id for prepared
// statement tests.
func newKeyedSession(t *testing.T, n int) *Session {
	t.Helper()
	s := NewSession(Config{})
	df, err := s.CreateIndexedTable("users", NewSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "city", Type: String},
		Field{Name: "age", Type: Int64},
	), 0)
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"ams", "del", "rio", "nyc", "sfo"}
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = R(int64(i), cities[i%len(cities)], int64(18+i%60))
	}
	if _, err := df.AppendRowsSlice(rows); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPreparedStatementMatchesAdHoc: 50 randomized parameter bindings
// return results identical to the parse-per-call SQL path.
func TestPreparedStatementMatchesAdHoc(t *testing.T) {
	const n = 5_000
	s := newKeyedSession(t, n)
	stmt, err := s.Prepare("SELECT id, city, age FROM users WHERE id = ? AND age >= ?")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.NumParams() != 2 {
		t.Fatalf("NumParams = %d, want 2", stmt.NumParams())
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		id := rng.Int63n(n)
		age := int64(18 + rng.Intn(60))
		got, err := stmt.Collect(context.Background(), id, age)
		if err != nil {
			t.Fatalf("binding %d (id=%d age=%d): %v", i, id, age, err)
		}
		want, err := s.MustSQL(fmt.Sprintf(
			"SELECT id, city, age FROM users WHERE id = %d AND age >= %d", id, age)).Collect()
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("binding %d (id=%d age=%d): prepared %v vs ad-hoc %v", i, id, age, got, want)
		}
	}
	// The lookup must hit the index, not scan: verify via the plan shape.
	explain, err := s.MustSQL("SELECT id, city, age FROM users WHERE id = 1 AND age >= 0").Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "IndexLookup") {
		t.Fatalf("ad-hoc point lookup not index-assisted:\n%s", explain)
	}
}

// TestPreparedStatementErrors: arity mismatches and non-SELECT statements
// fail cleanly, and unbound params error at execution.
func TestPreparedStatementErrors(t *testing.T) {
	s := newKeyedSession(t, 100)
	stmt, err := s.Prepare("SELECT id FROM users WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Query(context.Background()); err == nil {
		t.Fatal("missing argument did not fail")
	}
	if _, err := stmt.Query(context.Background(), 1, 2); err == nil {
		t.Fatal("extra argument did not fail")
	}
	if _, err := stmt.Query(context.Background(), struct{}{}); err == nil {
		t.Fatal("unsupported argument type did not fail")
	}
	if _, err := s.Prepare("DROP MATERIALIZED VIEW v"); err == nil {
		t.Fatal("preparing DDL did not fail")
	}
	// Running a parameterized statement ad hoc errors at execution.
	if _, err := s.MustSQL("SELECT id FROM users WHERE id = ?").Collect(); err == nil {
		t.Fatal("ad-hoc execution of parameterized SQL did not fail")
	}
}

// TestPreparedParamBelowVecExchange: a parameter that sits beneath a
// columnar exchange (a row Filter with a placeholder feeding a vectorized
// shuffle GROUP BY) must still be bound — the plan rewrite has to recurse
// through VecExchange, not stop at it and hand back the template with the
// placeholder unbound.
func TestPreparedParamBelowVecExchange(t *testing.T) {
	s := NewSession(Config{TablePartitions: 4})
	df, err := s.CreateTable("t", bigSchema(), func() []Row {
		rows := make([]Row, 4_000)
		for i := range rows {
			rows[i] = R(int64(i), int64(i%50))
		}
		return rows
	}())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.Cache(); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT val, COUNT(*) AS c FROM t WHERE id >= ? GROUP BY val"
	// The shape under test: a VecExchange above the param-bearing subtree.
	explain, err := s.MustSQL("SELECT val, COUNT(*) AS c FROM t WHERE id >= 0 GROUP BY val").Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "VecExchange") {
		t.Fatalf("expected a VecExchange in the aggregate plan:\n%s", explain)
	}
	stmt, err := s.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, bound := range []int64{0, 3_999, 1_234} {
		got, err := stmt.Collect(context.Background(), bound)
		if err != nil {
			t.Fatalf("bound=%d: %v", bound, err)
		}
		want, err := s.MustSQL(fmt.Sprintf(
			"SELECT val, COUNT(*) AS c FROM t WHERE id >= %d GROUP BY val", bound)).Collect()
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(canonicalRows(got)) != fmt.Sprint(canonicalRows(want)) {
			t.Fatalf("bound=%d: prepared %v vs ad-hoc %v", bound, got, want)
		}
	}
}

// canonicalRows renders rows order-independently (group output order is
// partition-dependent).
func canonicalRows(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

// TestPreparedPlanCacheReuse: preparing the same normalized SQL twice hits
// the LRU plan cache.
func TestPreparedPlanCacheReuse(t *testing.T) {
	s := newKeyedSession(t, 100)
	if _, err := s.Prepare("SELECT id FROM users WHERE id = ?"); err != nil {
		t.Fatal(err)
	}
	// Different whitespace and keyword case, same normalized statement.
	if _, err := s.Prepare("select  id\nfrom users\twhere id = ?"); err != nil {
		t.Fatal(err)
	}
	hits, misses := s.PlanCacheStats()
	if hits < 1 {
		t.Fatalf("plan cache hits = %d (misses %d), want >= 1", hits, misses)
	}
	// DDL on an unrelated table keeps the plan warm: invalidation is keyed
	// by the tables a compiled plan references.
	if _, err := s.CreateTable("other", bigSchema(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prepare("SELECT id FROM users WHERE id = ?"); err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := s.PlanCacheStats()
	if misses2 != misses {
		t.Fatalf("unrelated DDL purged the plan (misses %d -> %d)", misses, misses2)
	}
	if hits2 <= hits {
		t.Fatalf("expected a cache hit after unrelated DDL (hits %d -> %d)", hits, hits2)
	}
	// DDL on the referenced table purges just its plans.
	s.DropTable("other") // unrelated drop: still warm
	if _, err := s.Prepare("SELECT id FROM users WHERE id = ?"); err != nil {
		t.Fatal(err)
	}
	if _, m := s.PlanCacheStats(); m != misses {
		t.Fatalf("dropping an unrelated table purged the plan (misses %d -> %d)", misses, m)
	}
	s.DropTable("users")
	if _, err := s.CreateIndexedTable("users", NewSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "city", Type: String},
		Field{Name: "age", Type: Int64},
	), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prepare("SELECT id FROM users WHERE id = ?"); err != nil {
		t.Fatal(err)
	}
	if _, m := s.PlanCacheStats(); m <= misses {
		t.Fatalf("expected a cache miss after DDL on the referenced table (misses %d -> %d)", misses, m)
	}
}

// TestConcurrentCursors runs many cursors over one session at once —
// meaningful under -race.
func TestConcurrentCursors(t *testing.T) {
	testutil.CheckGoroutines(t)
	const n = 50_000
	s, df := newStreamSession(t, n, 16, 4)
	stmt, err := s.Prepare("SELECT id, val FROM big WHERE val = ?")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the goroutines stream full scans, half run prepared
			// lookups with distinct bindings.
			if g%2 == 0 {
				rows, err := df.Query(context.Background())
				if err != nil {
					errs <- err
					return
				}
				defer rows.Close()
				c := 0
				for rows.Next() {
					c++
				}
				if err := rows.Err(); err != nil {
					errs <- err
					return
				}
				if c != n {
					errs <- fmt.Errorf("goroutine %d: streamed %d rows, want %d", g, c, n)
				}
			} else {
				for i := 0; i < 20; i++ {
					got, err := stmt.Collect(context.Background(), int64((g*31+i)%101))
					if err != nil {
						errs <- err
						return
					}
					if len(got) == 0 {
						errs <- fmt.Errorf("goroutine %d: empty lookup result", g)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDropTableDropsDependentViews: dropping a base table drops every
// materialized view defined over it and turns change capture off
// (regression for the view/capture leak).
func TestDropTableDropsDependentViews(t *testing.T) {
	s, df := newViewSession(t, 1_000, Config{})
	if _, err := s.CreateMaterializedView("by_region", salesAggSQL); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateMaterializedView("totals", "SELECT SUM(amount) AS total FROM sales"); err != nil {
		t.Fatal(err)
	}
	core := df.IndexedCore()
	if !core.ChangeCaptureEnabled() {
		t.Fatal("change capture not enabled by view creation")
	}
	s.DropTable("sales")
	if got := s.MaterializedViews(); len(got) != 0 {
		t.Fatalf("views leaked after DropTable: %v", got)
	}
	for _, name := range []string{"sales", "by_region", "totals"} {
		if _, ok := s.LookupTable(name); ok {
			t.Fatalf("table/view %q still registered after DropTable", name)
		}
	}
	if core.ChangeCaptureEnabled() {
		t.Fatal("change capture still enabled after dropping the base table")
	}
}
