package indexeddf

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"indexeddf/internal/faultpoint"
	"indexeddf/internal/memory"
	"indexeddf/internal/rdd"
	"indexeddf/internal/stream"
	"indexeddf/internal/testutil"
	"indexeddf/internal/view"
)

// newBudgetSession builds a session over an n-row "big" table with the
// given memory budgets (engine / per-query, 0 = unbounded).
func newBudgetSession(t *testing.T, n int, engineLimit, queryLimit int64) *Session {
	t.Helper()
	s := NewSession(Config{MemoryLimit: engineLimit, QueryMemoryLimit: queryLimit})
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = R(int64(i), int64(i%101))
	}
	if _, err := s.CreateTable("big", bigSchema(), rows); err != nil {
		t.Fatal(err)
	}
	return s
}

// newSpillBudgetSession is newBudgetSession with out-of-core execution
// enabled: a tight per-query budget plus a SpillDir whose end-of-test
// emptiness is asserted — failed and chaos-ridden queries must reap every
// run file.
func newSpillBudgetSession(t *testing.T, n int, queryLimit int64) *Session {
	t.Helper()
	dir := t.TempDir()
	testutil.CheckNoFiles(t, dir)
	s := NewSession(Config{QueryMemoryLimit: queryLimit, SpillDir: dir,
		TablePartitions: 8, ShufflePartitions: 4, Parallelism: 2})
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Session.Close: %v", err)
		}
	})
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = R(int64(i), int64(i%101))
	}
	if _, err := s.CreateTable("big", bigSchema(), rows); err != nil {
		t.Fatal(err)
	}
	return s
}

// collectSQL runs a query to completion, returning the rows or the error
// that terminated the cursor.
func collectSQL(s *Session, q string) ([]Row, error) {
	rows, err := s.Query(context.Background(), q)
	if err != nil {
		return nil, err
	}
	return drainRows(rows)
}

// wantLimitError asserts err is a memory-budget failure naming op at scope.
func wantLimitError(t *testing.T, err error, op, scope string) {
	t.Helper()
	if !errors.Is(err, memory.ErrMemoryExceeded) {
		t.Fatalf("err = %v, want ErrMemoryExceeded", err)
	}
	var le *memory.LimitError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *memory.LimitError", err)
	}
	if le.Operator != op || le.Scope != scope {
		t.Fatalf("limit error names operator %q scope %q (query %q), want %q/%q: %v",
			le.Operator, le.Scope, le.Query, op, scope, err)
	}
}

// TestQueryMemoryLimitGroupBy: a high-cardinality GROUP BY blows its
// per-query budget and fails with a structured error naming the aggregate
// operator — while a concurrent query under budget completes untouched.
func TestQueryMemoryLimitGroupBy(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := newBudgetSession(t, 200_000, 0, 256<<10)

	var wg sync.WaitGroup
	wg.Add(1)
	small := make(chan error, 1)
	go func() {
		defer wg.Done()
		rows, err := collectSQL(s, "SELECT COUNT(*) FROM big WHERE val < 50")
		if err == nil && (len(rows) != 1 || rows[0][0].Int64Val() == 0) {
			err = fmt.Errorf("bad small-query result %v", rows)
		}
		small <- err
	}()

	_, err := collectSQL(s, "SELECT id, COUNT(*) FROM big GROUP BY id")
	wantLimitError(t, err, "VecHashAgg", "query")

	wg.Wait()
	if err := <-small; err != nil {
		t.Fatalf("concurrent under-budget query: %v", err)
	}
	// The failed query's whole grant went back to the engine pool.
	if used := s.MemoryPool().Used(); used > 64<<10 {
		t.Fatalf("pool still holds %d bytes after queries finished", used)
	}
	if n := s.Context().ShuffleOutstanding(); n != 0 {
		t.Fatalf("%d shuffles still retained", n)
	}
}

// TestQueryMemoryLimitOrderBy: an ORDER BY whose sort buffers exceed the
// per-query budget fails naming the sort operator; the same session then
// answers a budget-friendly query (LIMIT pushes down to a bounded top-n).
func TestQueryMemoryLimitOrderBy(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := newBudgetSession(t, 200_000, 0, 256<<10)

	_, err := collectSQL(s, "SELECT id, val FROM big ORDER BY val, id")
	wantLimitError(t, err, "VecSort", "query")

	rows, err := collectSQL(s, "SELECT id, val FROM big ORDER BY val, id LIMIT 5")
	if err != nil {
		t.Fatalf("bounded top-n after budget failure: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("top-n returned %d rows", len(rows))
	}
	if used := s.MemoryPool().Used(); used > 64<<10 {
		t.Fatalf("pool still holds %d bytes", used)
	}
}

// TestEngineMemoryLimit: with only the engine-wide pool bounded, a
// runaway query fails engine-scope and the pool drains back so later
// queries run.
func TestEngineMemoryLimit(t *testing.T) {
	s := newBudgetSession(t, 200_000, 4<<20, 0)

	_, err := collectSQL(s, "SELECT id, COUNT(*) FROM big GROUP BY id")
	if !errors.Is(err, memory.ErrMemoryExceeded) {
		t.Fatalf("err = %v, want ErrMemoryExceeded", err)
	}
	var le *memory.LimitError
	if !errors.As(err, &le) || le.Scope != "engine" {
		t.Fatalf("err = %v, want engine-scope limit error", err)
	}

	rows, err := collectSQL(s, "SELECT val, COUNT(*) FROM big GROUP BY val")
	if err != nil {
		t.Fatalf("session unusable after engine-limit failure: %v", err)
	}
	if len(rows) != 101 {
		t.Fatalf("follow-up GROUP BY returned %d groups, want 101", len(rows))
	}
}

// TestPanicContainmentAtFaultpoints arms a panic at every engine-side
// injection site in turn and asserts the resilience contract: the query
// fails with a *rdd.TaskPanicError carrying the injected value and a
// stack, the process survives, no shuffle outputs leak, and the very same
// session answers the very same query correctly once the fault is gone.
func TestPanicContainmentAtFaultpoints(t *testing.T) {
	defer faultpoint.Reset()
	testutil.CheckGoroutines(t)
	s := newBudgetSession(t, 50_000, 0, 0)
	const q = "SELECT val, COUNT(*) AS c FROM big GROUP BY val"
	want, err := collectSQL(s, q)
	if err != nil {
		t.Fatal(err)
	}
	sortRows(want)

	for _, p := range []faultpoint.Point{
		faultpoint.TaskStart, faultpoint.ShuffleWrite,
		faultpoint.BatchSeal, faultpoint.ShuffleFetch,
	} {
		t.Run(string(p), func(t *testing.T) {
			faultpoint.Reset()
			faultpoint.Arm(p, faultpoint.Schedule{Panic: "injected-boom", Limit: 1})
			_, err := collectSQL(s, q)
			if err == nil {
				t.Fatalf("query survived a panic at %s (site never reached?)", p)
			}
			var tp *rdd.TaskPanicError
			if !errors.As(err, &tp) {
				t.Fatalf("err = %v (%T), want *rdd.TaskPanicError", err, err)
			}
			inj, ok := tp.Val.(*faultpoint.Injected)
			if !ok || inj.Point != p || inj.Val != "injected-boom" {
				t.Fatalf("panic value = %#v, want injected at %s", tp.Val, p)
			}
			if len(tp.Stack) == 0 || !strings.Contains(string(tp.Stack), "goroutine") {
				t.Fatal("panic error carries no stack")
			}

			// Fault cleared: the same session answers correctly.
			faultpoint.Reset()
			got, err := collectSQL(s, q)
			if err != nil {
				t.Fatalf("session unserviceable after contained panic: %v", err)
			}
			sortRows(got)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("post-fault results diverge:\n got %v\nwant %v", got, want)
			}
			waitShufflesReleased(t, s)
		})
	}
}

// TestErrorInjectionAtFaultpoints: scheduled errors (not panics) surface
// to the caller with errors.Is intact through every wrapping layer.
func TestErrorInjectionAtFaultpoints(t *testing.T) {
	defer faultpoint.Reset()
	s := newBudgetSession(t, 20_000, 0, 0)
	boom := errors.New("injected failure")
	const q = "SELECT val, COUNT(*) FROM big GROUP BY val"
	for _, p := range []faultpoint.Point{
		faultpoint.TaskStart, faultpoint.ShuffleWrite,
		faultpoint.BatchSeal, faultpoint.ShuffleFetch,
	} {
		faultpoint.Reset()
		faultpoint.Arm(p, faultpoint.Schedule{Err: boom, Limit: 1})
		if _, err := collectSQL(s, q); !errors.Is(err, boom) {
			t.Fatalf("%s: err = %v, want wrapped injected error", p, err)
		}
	}
	faultpoint.Reset()
	if _, err := collectSQL(s, q); err != nil {
		t.Fatalf("session unserviceable after injected errors: %v", err)
	}
}

// waitShufflesReleased polls the leak invariant: every shuffle's retained
// map outputs are dropped once the cursors over them are gone.
func waitShufflesReleased(t *testing.T, s *Session) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := s.Context().ShuffleOutstanding()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d shuffles still retain outputs", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShuffleReleasedOnCursorClose pins the satellite leak invariant:
// truncated and cancelled cursors over shuffle stages retain no outputs
// after Close.
func TestShuffleReleasedOnCursorClose(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := newBudgetSession(t, 100_000, 0, 0)

	// Truncated: read two groups of a shuffled aggregate, then Close.
	rows, err := s.Query(context.Background(), "SELECT val, COUNT(*) FROM big GROUP BY val")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2 && rows.Next(); i++ {
	}
	rows.Close()
	waitShufflesReleased(t, s)

	// Cancelled mid-stream.
	ctx, cancel := context.WithCancel(context.Background())
	rows, err = s.Query(ctx, "SELECT id, val FROM big ORDER BY val, id")
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	cancel()
	for rows.Next() {
	}
	rows.Close()
	waitShufflesReleased(t, s)
}

// TestOrderByCancelsMidPartition: cancellation lands inside sort-run
// building / the k-way merge (the interruptible-sort satellite), so a
// large ORDER BY stops promptly instead of sorting to completion.
func TestOrderByCancelsMidPartition(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := newBudgetSession(t, 1_000_000, 0, 0)
	ctx, cancel := context.WithCancel(context.Background())
	rows, err := s.Query(ctx, "SELECT id, val FROM big ORDER BY val, id")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	for rows.Next() {
	}
	if err := rows.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 15*time.Second {
		t.Fatalf("cancellation took %v — sort did not poll the context", d)
	}
}

// TestIngestViewRefreshFault: an injected view-refresh failure during
// stream ingestion surfaces to the caller, and the view — whose
// accumulator state the aborted refresh may have partially folded — falls
// back to a full recompute and keeps answering correctly.
func TestIngestViewRefreshFault(t *testing.T) {
	defer faultpoint.Reset()
	testutil.CheckGoroutines(t)
	s, _ := newViewSession(t, 20, Config{})
	mv, err := s.CreateMaterializedView("v", salesAggSQL)
	if err != nil {
		t.Fatal(err)
	}
	vv := mv.(*view.View)
	baseRecomputes := vv.Stats().FullRecomputes

	topic := stream.NewTopic("sales-updates", 3)
	for i := 0; i < 50; i++ {
		row := R(int64(100+i), []string{"emea", "apac"}[i%2], int64(i))
		topic.Produce(row[0], row)
	}

	boom := errors.New("refresh blew up")
	faultpoint.Arm(faultpoint.ViewRefresh, faultpoint.Schedule{Err: boom, Limit: 1})
	applied, err := s.IngestTopic(topic, "applier", "sales", 16)
	if !errors.Is(err, boom) {
		t.Fatalf("ingest err = %v, want injected refresh failure", err)
	}
	if applied != 16 {
		t.Fatalf("applied = %d, want the first batch (16) stuck before the refresh failed", applied)
	}

	// Fault exhausted: draining the rest succeeds, and the view answers
	// identically to a from-scratch aggregation — via a full recompute,
	// never by re-folding the delta the failed refresh half-applied.
	rest, err := s.IngestTopic(topic, "applier", "sales", 16)
	if err != nil {
		t.Fatal(err)
	}
	if applied+rest != 50 {
		t.Fatalf("applied %d + %d rows, want 50", applied, rest)
	}
	got := collectSorted(t, s, salesAggSQL)
	want := freshAggregate(t, s)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("view after failed refresh:\n got %v\nwant %v", got, want)
	}
	if vv.Stats().FullRecomputes <= baseRecomputes {
		t.Fatal("recovery did not fall back to a full recompute")
	}

	// A panicking refresh is contained the same way.
	for i := 0; i < 10; i++ {
		row := R(int64(200+i), "anz", int64(i))
		topic.Produce(row[0], row)
	}
	faultpoint.Arm(faultpoint.ViewRefresh, faultpoint.Schedule{Panic: "refresh-boom", Limit: 1})
	_, err = s.IngestTopic(topic, "applier", "sales", 16)
	var tp *rdd.TaskPanicError
	if !errors.As(err, &tp) {
		t.Fatalf("ingest err = %v (%T), want contained panic", err, err)
	}
	faultpoint.Reset()
	if _, err := s.IngestTopic(topic, "applier", "sales", 16); err != nil {
		t.Fatalf("ingest after contained panic: %v", err)
	}
	got = collectSorted(t, s, salesAggSQL)
	want = freshAggregate(t, s)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("view after contained panic:\n got %v\nwant %v", got, want)
	}
}

// TestIngestAppendFault: a fault at the append site stops ingestion before
// any row of the failing batch lands, so the applied count stays exact.
func TestIngestAppendFault(t *testing.T) {
	defer faultpoint.Reset()
	s, _ := newViewSession(t, 10, Config{})
	topic := stream.NewTopic("sales-updates", 3)
	for i := 0; i < 40; i++ {
		row := R(int64(100+i), "emea", int64(i))
		topic.Produce(row[0], row)
	}
	boom := errors.New("append refused")
	faultpoint.Arm(faultpoint.IngestAppend, faultpoint.Schedule{Err: boom, Skip: 1, Limit: 1})
	applied, err := s.IngestTopic(topic, "applier", "sales", 16)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected append failure", err)
	}
	if applied != 16 {
		t.Fatalf("applied = %d, want exactly the one batch before the fault", applied)
	}
	faultpoint.Reset()
	// The failed batch was rewound, not lost: the re-drain delivers it
	// again along with everything behind it.
	rest, err := s.IngestTopic(topic, "applier", "sales", 16)
	if err != nil || applied+rest != 40 {
		t.Fatalf("re-drain = %d, %v (want the remaining 24)", rest, err)
	}
}

// TestSpillFaultInjection arms faults at the spill fabric's injection
// sites in turn — the run writer, the run reader, and the fan-out
// partition step — and asserts the resilience contract for out-of-core
// queries: an
// injected write or read failure fails only its query (with the cause
// intact through every wrapping layer), an injected panic is contained as
// a *rdd.TaskPanicError, a delay merely slows the query down, no run
// files survive any of it (the session-level CheckNoFiles asserts that),
// and the same session answers the same spilling query correctly once the
// fault clears.
func TestSpillFaultInjection(t *testing.T) {
	defer faultpoint.Reset()
	testutil.CheckGoroutines(t)
	testutil.CheckFDs(t)
	s := newSpillBudgetSession(t, 120_000, 192<<10)
	// The sort reaches the spill I/O sites; the high-cardinality GROUP BY
	// overflows its group table and reaches the fan-out partition site
	// (HAVING discards the — all-unique — groups so the query's charged
	// result buffers stay tiny while every group crosses the fabric).
	queries := map[faultpoint.Point]string{
		faultpoint.SpillWrite:     "SELECT id, val FROM big ORDER BY val, id",
		faultpoint.SpillRead:      "SELECT id, val FROM big ORDER BY val, id",
		faultpoint.SpillPartition: "SELECT id, COUNT(*) FROM big GROUP BY id HAVING COUNT(*) > 1",
	}

	boom := errors.New("disk full")
	for _, p := range []faultpoint.Point{faultpoint.SpillWrite, faultpoint.SpillRead, faultpoint.SpillPartition} {
		t.Run(string(p), func(t *testing.T) {
			q := queries[p]
			faultpoint.Reset()
			want, err := collectSQL(s, q)
			if err != nil {
				t.Fatal(err)
			}
			faultpoint.Arm(p, faultpoint.Schedule{Err: boom, Limit: 1})
			if _, err := collectSQL(s, q); !errors.Is(err, boom) {
				t.Fatalf("err = %v, want wrapped injected %s failure", err, p)
			}

			faultpoint.Arm(p, faultpoint.Schedule{Panic: "spill-boom", Limit: 1})
			_, err = collectSQL(s, q)
			var tp *rdd.TaskPanicError
			if !errors.As(err, &tp) {
				t.Fatalf("panic at %s surfaced %v (%T), want contained *rdd.TaskPanicError", p, err, err)
			}

			faultpoint.Arm(p, faultpoint.Schedule{Delay: 2 * time.Millisecond, Limit: 4})
			got, err := collectSQL(s, q)
			if err != nil {
				t.Fatalf("delayed %s: %v", p, err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("delay at %s changed results", p)
			}

			// Fault gone: the spilling query still answers exactly.
			faultpoint.Reset()
			got, err = collectSQL(s, q)
			if err != nil {
				t.Fatalf("session unserviceable after %s faults: %v", p, err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatal("post-fault results diverge")
			}
			waitShufflesReleased(t, s)
		})
	}
}

// TestChaosFaultSchedules is the randomized chaos suite: randomized
// queries under randomized fault schedules (errors, panics, delays; random
// skip/limit) at randomized engine sites. The contract under every
// schedule: the process survives, every query terminates (no deadlock —
// enforced by a per-query deadline), failed queries surface real errors,
// successful queries return exactly the fault-free results, and neither
// shuffle outputs, run files nor goroutines leak. Once faults clear, the
// engine answers everything correctly. The session runs out-of-core (tight
// budget + SpillDir) so the spill fabric's I/O sites are in the rotation
// alongside the task and shuffle sites.
func TestChaosFaultSchedules(t *testing.T) {
	defer faultpoint.Reset()
	testutil.CheckGoroutines(t)
	s := newSpillBudgetSession(t, 30_000, 256<<10)

	queries := []string{
		"SELECT val, COUNT(*) AS c FROM big GROUP BY val",
		"SELECT id, val FROM big ORDER BY val, id LIMIT 100",
		"SELECT COUNT(*) FROM big WHERE val < 50",
		"SELECT val, COUNT(*) AS c FROM big GROUP BY val ORDER BY c DESC, val LIMIT 7",
		"SELECT id, val FROM big ORDER BY val, id", // full sort: spills under the budget
		// High-cardinality GROUP BY: the group table overflows the budget
		// and fans out, putting the partition site in play.
		"SELECT id, COUNT(*) FROM big GROUP BY id HAVING COUNT(*) > 1",
	}
	want := make([][]Row, len(queries))
	for i, q := range queries {
		rows, err := collectSQL(s, q)
		if err != nil {
			t.Fatal(err)
		}
		sortRows(rows)
		want[i] = rows
	}

	points := []faultpoint.Point{
		faultpoint.TaskStart, faultpoint.ShuffleWrite,
		faultpoint.BatchSeal, faultpoint.ShuffleFetch,
		faultpoint.SpillWrite, faultpoint.SpillRead,
		faultpoint.SpillPartition,
	}
	boom := errors.New("chaos error")
	rng := rand.New(rand.NewSource(20260808))
	iters := 60
	if testing.Short() {
		iters = 12
	}
	for i := 0; i < iters; i++ {
		faultpoint.Reset()
		p := points[rng.Intn(len(points))]
		sched := faultpoint.Schedule{Skip: rng.Int63n(4), Limit: 1 + rng.Int63n(2)}
		switch rng.Intn(3) {
		case 0:
			sched.Err = boom
		case 1:
			sched.Panic = "chaos panic"
		case 2:
			sched.Delay = time.Duration(1+rng.Intn(3)) * time.Millisecond
		}
		faultpoint.Arm(p, sched)

		qi := rng.Intn(len(queries))
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		rows, err := s.Query(ctx, queries[qi])
		var got []Row
		if err == nil {
			got, err = drainRows(rows)
		}
		cancel()
		if errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("iter %d (%s at %s): query deadlocked", i, queries[qi], p)
		}
		if err == nil {
			sortRows(got)
			if fmt.Sprint(got) != fmt.Sprint(want[qi]) {
				t.Fatalf("iter %d (%s at %s): fault-free-looking run returned wrong rows:\n got %v\nwant %v",
					i, queries[qi], p, got, want[qi])
			}
		} else if sched.Panic != nil && sched.Err == nil {
			var tp *rdd.TaskPanicError
			if !errors.As(err, &tp) {
				t.Fatalf("iter %d: panic schedule surfaced %v (%T), want contained TaskPanicError", i, err, err)
			}
		}
		waitShufflesReleased(t, s)
	}

	// Faults cleared: everything answers correctly on the same session.
	faultpoint.Reset()
	for i, q := range queries {
		rows, err := collectSQL(s, q)
		if err != nil {
			t.Fatalf("post-chaos %s: %v", q, err)
		}
		sortRows(rows)
		if fmt.Sprint(rows) != fmt.Sprint(want[i]) {
			t.Fatalf("post-chaos %s:\n got %v\nwant %v", q, rows, want[i])
		}
	}
	waitShufflesReleased(t, s)
}
