// Benchmarks regenerating the paper's evaluation. One benchmark family per
// figure/claim (DESIGN.md §4):
//
//	BenchmarkFigure2_* — SQL operators, Indexed DataFrame vs vanilla
//	BenchmarkFigure3_* — SNB simple reads SQ1–SQ7 on both engines
//	BenchmarkMemoryOverhead — §2 memory-overhead claim
//	BenchmarkAppend* — §2 fine-grained vs batched appends
//	BenchmarkSnapshotQueriesUnderAppends — §2 MVCC claim
//
// Run `go test -bench=. -benchmem` or `go run ./cmd/benchrunner` for the
// paper-style tables.
package indexeddf_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"indexeddf"
	"indexeddf/internal/bench"
	"indexeddf/internal/snb"
)

var (
	fig2Once sync.Once
	fig2Env  *bench.Env
	fig3Once sync.Once
	fig3Env  *bench.Env
)

// benchSF keeps `go test -bench` runs fast; cmd/benchrunner scales up.
const benchSF = 0.5

func figure2Env(b *testing.B) *bench.Env {
	b.Helper()
	fig2Once.Do(func() {
		// Cluster regime: base tables too large to broadcast (threshold 1),
		// so vanilla joins shuffle both sides while the indexed join only
		// shuffles the probe side — the paper's Figure 2 setting.
		e, err := bench.NewEnv(bench.EnvConfig{ScaleFactor: benchSF, Seed: 1, BroadcastThreshold: 1})
		if err != nil {
			b.Fatal(err)
		}
		fig2Env = e
	})
	return fig2Env
}

func figure3Env(b *testing.B) *bench.Env {
	b.Helper()
	fig3Once.Do(func() {
		e, err := bench.NewEnv(bench.EnvConfig{ScaleFactor: benchSF, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		fig3Env = e
	})
	return fig3Env
}

func runOp(b *testing.B, op bench.Op, g *snb.Graph) {
	b.Helper()
	if _, err := op.Run(g); err != nil { // warm-up + error check
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := op.Run(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2: each operator on both engines.
func BenchmarkFigure2(b *testing.B) {
	e := figure2Env(b)
	for _, op := range bench.Figure2Ops(e) {
		op := op
		b.Run(op.Name+"/IndexedDF", func(b *testing.B) { runOp(b, op, e.Indexed) })
		b.Run(op.Name+"/Spark", func(b *testing.B) { runOp(b, op, e.Vanilla) })
	}
}

// BenchmarkFigure3 regenerates Figure 3: SQ1–SQ7 on both engines.
func BenchmarkFigure3(b *testing.B) {
	e := figure3Env(b)
	for _, op := range bench.Figure3Ops(e) {
		op := op
		b.Run(op.Name+"/IndexedDF", func(b *testing.B) { runOp(b, op, e.Indexed) })
		b.Run(op.Name+"/Spark", func(b *testing.B) { runOp(b, op, e.Vanilla) })
	}
}

// BenchmarkMemoryOverhead reports the §2 claim as custom metrics: bytes of
// the indexed representation vs the columnar cache for the same data.
func BenchmarkMemoryOverhead(b *testing.B) {
	e := figure3Env(b)
	r := bench.Memory(e)
	b.ReportMetric(float64(r.ColumnarBytes), "columnar-bytes")
	b.ReportMetric(float64(r.DataBytes), "rowdata-bytes")
	b.ReportMetric(float64(r.IndexBytes), "index-bytes")
	b.ReportMetric(r.OverheadPerCopy, "overhead-ratio")
	for i := 0; i < b.N; i++ {
		_ = bench.Memory(e)
	}
}

func appendTable(b *testing.B) *indexeddf.DataFrame {
	b.Helper()
	sess := indexeddf.NewSession(indexeddf.Config{})
	df, err := sess.CreateIndexedTable("events", snb.KnowsSchema(), 0)
	if err != nil {
		b.Fatal(err)
	}
	return df
}

// BenchmarkAppendFineGrained measures single-row (low-latency) appends.
func BenchmarkAppendFineGrained(b *testing.B) {
	df := appendTable(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := indexeddf.R(int64(i%1000), int64(i), int64(i))
		if _, err := df.AppendRowsSlice([]indexeddf.Row{row}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendBatch measures 1000-row batched appends (per-row cost).
func BenchmarkAppendBatch(b *testing.B) {
	df := appendTable(b)
	batch := make([]indexeddf.Row, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			k := i*len(batch) + j
			batch[j] = indexeddf.R(int64(k%1000), int64(k), int64(k))
		}
		if _, err := df.AppendRowsSlice(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendVisibility compares "append one row then query it":
// the Indexed DataFrame stays cached, vanilla must re-materialize its
// columnar cache — the paper's motivating asymmetry.
func BenchmarkAppendVisibility(b *testing.B) {
	d := snb.Generate(snb.Config{ScaleFactor: benchSF, Seed: 3})
	mk := func(indexed bool) *snb.Graph {
		sess := indexeddf.NewSession(indexeddf.Config{})
		g, err := snb.Load(sess, d, indexed)
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	run := func(b *testing.B, g *snb.Graph) {
		us := snb.NewUpdateStream(d, 9)
		frame := func() *indexeddf.DataFrame {
			if g.Indexed {
				return g.KnowsByP1
			}
			return g.Knows
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var u snb.Update
			for {
				u = us.Next()
				if u.Kind == snb.AddKnows {
					break
				}
			}
			if err := snb.Apply(g, []snb.Update{u}); err != nil {
				b.Fatal(err)
			}
			key := u.Row[0]
			rows, err := frame().Filter(indexeddf.Eq(indexeddf.Col("person1Id"), indexeddf.Lit(key))).Collect()
			if err != nil || len(rows) == 0 {
				b.Fatalf("appended row not visible: %v %v", rows, err)
			}
		}
	}
	b.Run("IndexedDF", func(b *testing.B) { run(b, mk(true)) })
	b.Run("Spark", func(b *testing.B) { run(b, mk(false)) })
}

// BenchmarkSnapshotQueriesUnderAppends measures SQ3 latency while a
// background writer continuously appends — the §2 MVCC claim.
func BenchmarkSnapshotQueriesUnderAppends(b *testing.B) {
	d := snb.Generate(snb.Config{ScaleFactor: benchSF, Seed: 5})
	sess := indexeddf.NewSession(indexeddf.Config{})
	g, err := snb.Load(sess, d, true)
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var appended atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		us := snb.NewUpdateStream(d, 11)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := snb.Apply(g, []snb.Update{us.Next()}); err != nil {
				return
			}
			appended.Add(1)
		}
	}()
	personID := d.Persons[1][0].Int64Val()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snb.IS3(g, personID); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(appended.Load())/float64(b.N), "appends/query")
}
