package indexeddf_test

import (
	"strings"
	"testing"

	"indexeddf"
)

// TestVectorizedPlanShapes guards the planner wiring: hot operators must
// actually lower to their vectorized forms (a silent fallback to the row
// path would keep results correct but forfeit the speedup).
func TestVectorizedPlanShapes(t *testing.T) {
	sess := buildSession(t, indexeddf.Config{}, false)
	ixSess := buildSession(t, indexeddf.Config{}, true)

	explain := func(s *indexeddf.Session, build func(*indexeddf.Session) (*indexeddf.DataFrame, error)) string {
		df, err := build(s)
		if err != nil {
			t.Fatal(err)
		}
		out, err := df.Explain()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	filterAgg := func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
		df, err := s.Table("facts")
		if err != nil {
			return nil, err
		}
		return df.Filter(indexeddf.Gt(indexeddf.Col("val"), indexeddf.Lit(float64(0)))).
			GroupBy("grp").Count(), nil
	}
	// A shuffle GROUP BY must be columnar end to end: partial aggregate,
	// exchange and final merge all vectorized — no row fallback at the
	// stage boundary.
	plan := explain(sess, filterAgg)
	for _, want := range []string{"VecFilter", "VecHashAggregate(partial)", "VecColumnarScan",
		"VecExchange", "VecHashAggregate(final)"} {
		if !strings.Contains(plan, want) {
			t.Errorf("vanilla filter+agg plan missing %s:\n%s", want, plan)
		}
	}
	if strings.Contains(plan, "\nExchange") || strings.Contains(plan, " Exchange") {
		t.Errorf("aggregate exchange fell back to the row exchange:\n%s", plan)
	}

	plan = explain(ixSess, filterAgg)
	if !strings.Contains(plan, "VecIndexedScan") {
		t.Errorf("indexed filter+agg plan missing VecIndexedScan:\n%s", plan)
	}

	// A join whose output feeds a vectorized aggregate gets the vectorized
	// probe; a join at the root (output collected as rows) stays row-based
	// — the columnar detour would be wasted work there.
	joinAgg := func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
		f, err := s.Table("facts")
		if err != nil {
			return nil, err
		}
		d, err := s.Table("dims")
		if err != nil {
			return nil, err
		}
		return f.Join(d, indexeddf.Eq(indexeddf.Col("grp"), indexeddf.Col("gid"))).
			GroupBy("label").Count(), nil
	}
	plan = explain(sess, joinAgg)
	if !strings.Contains(plan, "VecBroadcastHashJoin") {
		t.Errorf("vanilla join-under-agg plan missing VecBroadcastHashJoin:\n%s", plan)
	}
	plan = explain(ixSess, joinAgg)
	if !strings.Contains(plan, "VecIndexedJoin") {
		t.Errorf("indexed join-under-agg plan missing VecIndexedJoin:\n%s", plan)
	}

	join := func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
		f, err := s.Table("facts")
		if err != nil {
			return nil, err
		}
		d, err := s.Table("dims")
		if err != nil {
			return nil, err
		}
		return f.Join(d, indexeddf.Eq(indexeddf.Col("grp"), indexeddf.Col("gid"))), nil
	}
	plan = explain(sess, join)
	if strings.Contains(plan, "VecBroadcastHashJoin") {
		t.Errorf("root join must stay row-based (output is collected):\n%s", plan)
	}
	plan = explain(ixSess, join)
	if strings.Contains(plan, "VecIndexedJoin") {
		t.Errorf("root indexed join must stay row-based (output is collected):\n%s", plan)
	}

	// Projection pushdown becomes a vectorized scan with pruned columns.
	proj := func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
		df, err := s.Table("facts")
		if err != nil {
			return nil, err
		}
		return df.SelectCols("tag"), nil
	}
	plan = explain(sess, proj)
	if !strings.Contains(plan, "VecColumnarScan facts cols=[3]") {
		t.Errorf("projection pushdown lost in vectorized plan:\n%s", plan)
	}

	// A scalar function is not vectorizable: the Project must stay
	// row-based while the scan beneath it still vectorizes.
	fallback := func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
		df, err := s.Table("facts")
		if err != nil {
			return nil, err
		}
		return df.Select(indexeddf.Fn("UPPER", indexeddf.Col("tag"))), nil
	}
	plan = explain(sess, fallback)
	if strings.Contains(plan, "VecProject") {
		t.Errorf("UPPER projection must not vectorize:\n%s", plan)
	}
	if !strings.Contains(plan, "VecColumnarScan") {
		t.Errorf("scan under row Project should still vectorize:\n%s", plan)
	}

	// physicalOf isolates the physical section: the logical sections
	// legitimately show Sort/Limit/TopN nodes.
	physicalOf := func(plan string) string {
		_, phys, ok := strings.Cut(plan, "== Physical Plan ==")
		if !ok {
			t.Fatalf("EXPLAIN output missing physical plan:\n%s", plan)
		}
		return phys
	}

	// ORDER BY lowers to the batch sort; ORDER BY ... LIMIT fuses into the
	// bounded top-n — the full Sort (and its trailing Limit) must be gone.
	orderBy := func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
		return s.SQL("SELECT grp, val FROM facts ORDER BY val DESC, grp")
	}
	phys := physicalOf(explain(sess, orderBy))
	if !strings.Contains(phys, "VecSort [") {
		t.Errorf("ORDER BY plan missing VecSort:\n%s", phys)
	}
	if strings.Contains(phys, "\nSort") || strings.Contains(phys, " Sort [") {
		t.Errorf("ORDER BY plan kept the row sort:\n%s", phys)
	}
	topN := func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
		return s.SQL("SELECT grp, val FROM facts ORDER BY val LIMIT 100")
	}
	plan = explain(sess, topN)
	if !strings.Contains(plan, "TopN 100 [facts.val ASC]") {
		t.Errorf("optimized logical plan missing the fused TopN:\n%s", plan)
	}
	phys = physicalOf(plan)
	if !strings.Contains(phys, "VecTopN 100 [") {
		t.Errorf("ORDER BY ... LIMIT plan missing VecTopN:\n%s", phys)
	}
	if strings.Contains(phys, "Sort [") || strings.Contains(phys, "Limit 100") {
		t.Errorf("top-n fusion left a Sort/Limit behind:\n%s", phys)
	}

	// A non-vectorizable sort key (scalar function) keeps the row sort;
	// the scan beneath still vectorizes.
	exprSort := func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
		return s.SQL("SELECT tag FROM facts ORDER BY UPPER(tag)")
	}
	phys = physicalOf(explain(sess, exprSort))
	if strings.Contains(phys, "VecSort") || strings.Contains(phys, "VecTopN") {
		t.Errorf("UPPER sort key must not vectorize the sort:\n%s", phys)
	}
	if !strings.Contains(phys, "Sort [") || !strings.Contains(phys, "VecColumnarScan") {
		t.Errorf("want row Sort over a vectorized scan:\n%s", phys)
	}

	// A point-lookup-rooted ORDER BY stays row-bound end to end.
	lookupSort := func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
		return s.SQL("SELECT id, val FROM facts WHERE grp = 3 ORDER BY val LIMIT 10")
	}
	plan = explain(ixSess, lookupSort)
	if !strings.Contains(plan, "IndexLookup") {
		t.Errorf("expected an IndexLookup under the sort:\n%s", plan)
	}
	if strings.Contains(plan, "Vec") {
		t.Errorf("point-lookup-rooted sort must stay row-at-a-time:\n%s", plan)
	}

	// Outer joins stay on the row operators.
	outer := func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
		f, err := s.Table("facts")
		if err != nil {
			return nil, err
		}
		d, err := s.Table("dims")
		if err != nil {
			return nil, err
		}
		return f.LeftJoin(d, indexeddf.Eq(indexeddf.Col("grp"), indexeddf.Col("gid"))), nil
	}
	plan = explain(sess, outer)
	if strings.Contains(plan, "VecBroadcastHashJoin") || strings.Contains(plan, "VecShuffleHashJoin") {
		t.Errorf("left outer join must not vectorize:\n%s", plan)
	}

	// Point-lookup-rooted subtrees are row-bound: a handful of rows per
	// query, where vectorization overhead cannot amortize. The whole plan
	// must stay row-at-a-time.
	lookupJoin := func(s *indexeddf.Session) (*indexeddf.DataFrame, error) {
		f, err := s.Table("facts")
		if err != nil {
			return nil, err
		}
		d, err := s.Table("dims")
		if err != nil {
			return nil, err
		}
		return f.Filter(indexeddf.Eq(indexeddf.Col("grp"), indexeddf.Lit(int64(3)))).
			Join(d, indexeddf.Eq(indexeddf.Col("grp"), indexeddf.Col("gid"))).
			SelectCols("label", "val"), nil
	}
	plan = explain(ixSess, lookupJoin)
	if !strings.Contains(plan, "IndexLookup") {
		t.Errorf("expected an IndexLookup plan:\n%s", plan)
	}
	if strings.Contains(plan, "Vec") {
		t.Errorf("point-lookup-rooted plan must stay row-at-a-time:\n%s", plan)
	}

	// DisableVectorized turns the rewrite off entirely — including the
	// sort/top-n lowering (the logical TopN still lowers to Sort + Limit).
	rowSess := buildSession(t, indexeddf.Config{DisableVectorized: true}, false)
	plan = explain(rowSess, filterAgg)
	if strings.Contains(plan, "Vec") {
		t.Errorf("DisableVectorized plan contains vectorized operators:\n%s", plan)
	}
	plan = explain(rowSess, topN)
	if strings.Contains(plan, "Vec") {
		t.Errorf("DisableVectorized top-n plan contains vectorized operators:\n%s", plan)
	}
	for _, want := range []string{"Limit 100", "Sort ["} {
		if !strings.Contains(plan, want) {
			t.Errorf("DisableVectorized top-n plan missing %s:\n%s", want, plan)
		}
	}
}
