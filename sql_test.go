package indexeddf

import (
	"strings"
	"testing"
)

func TestSQLSelectWhere(t *testing.T) {
	s, _, _ := newTestSession(t)
	rows, err := s.MustSQL("SELECT id, name FROM person WHERE city = 'ams' AND age > 30").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if len(r) != 2 {
			t.Fatalf("arity %d", len(r))
		}
	}
}

func TestSQLSelectStar(t *testing.T) {
	s, _, _ := newTestSession(t)
	rows, err := s.MustSQL("SELECT * FROM person LIMIT 7").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 || len(rows[0]) != 4 {
		t.Fatalf("rows=%d arity=%d", len(rows), len(rows[0]))
	}
}

func TestSQLJoin(t *testing.T) {
	s, _, _ := newTestSession(t)
	q := `SELECT p.name, k.person2Id
	      FROM knows k JOIN person p ON k.person1Id = p.id
	      WHERE p.city = 'ams'`
	rows, err := s.MustSQL(q).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 68 { // 34 ams people x 2 edges
		t.Fatalf("join rows = %d, want 68", len(rows))
	}
}

func TestSQLGroupByHavingOrder(t *testing.T) {
	s, _, _ := newTestSession(t)
	q := `SELECT city, COUNT(*) AS cnt, AVG(age) AS avgAge
	      FROM person GROUP BY city HAVING COUNT(*) > 30
	      ORDER BY cnt DESC, city`
	rows, err := s.MustSQL(q).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	if rows[0][1].Int64Val() < rows[1][1].Int64Val() {
		t.Fatalf("not sorted desc: %v", rows)
	}
}

func TestSQLAggregatesGlobal(t *testing.T) {
	s, _, _ := newTestSession(t)
	rows, err := s.MustSQL("SELECT COUNT(*), MIN(age), MAX(age), SUM(age) FROM person").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int64Val() != 100 {
		t.Fatalf("agg = %v", rows)
	}
}

func TestSQLOrderLimitOffsetless(t *testing.T) {
	s, _, _ := newTestSession(t)
	rows, err := s.MustSQL("SELECT id FROM person ORDER BY id DESC LIMIT 3").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0].Int64Val() != 99 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSQLBetweenInLike(t *testing.T) {
	s, _, _ := newTestSession(t)
	n, err := s.MustSQL("SELECT id FROM person WHERE id BETWEEN 10 AND 19").Count()
	if err != nil || n != 10 {
		t.Fatalf("between = %d, %v", n, err)
	}
	n2, err := s.MustSQL("SELECT id FROM person WHERE id IN (1, 2, 3)").Count()
	if err != nil || n2 != 3 {
		t.Fatalf("in = %d, %v", n2, err)
	}
	n3, err := s.MustSQL("SELECT id FROM person WHERE name LIKE 'p0_'").Count()
	if err != nil || n3 != 10 {
		t.Fatalf("like = %d, %v", n3, err)
	}
	n4, err := s.MustSQL("SELECT id FROM person WHERE name LIKE 'p%'").Count()
	if err != nil || n4 != 100 {
		t.Fatalf("like%% = %d, %v", n4, err)
	}
}

func TestSQLUnionAllAndDistinct(t *testing.T) {
	s, _, _ := newTestSession(t)
	n, err := s.MustSQL("SELECT id FROM person UNION ALL SELECT id FROM person").Count()
	if err != nil || n != 200 {
		t.Fatalf("union all = %d, %v", n, err)
	}
	n2, err := s.MustSQL("SELECT DISTINCT city FROM person").Count()
	if err != nil || n2 != 3 {
		t.Fatalf("distinct = %d, %v", n2, err)
	}
}

func TestSQLExpressionsAndFunctions(t *testing.T) {
	s, _, _ := newTestSession(t)
	rows, err := s.MustSQL("SELECT UPPER(name) AS un, age + 1 AS a1, CAST(id AS STRING) FROM person WHERE id = 3").Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].StringVal() != "P03" || rows[0][1].Int64Val() != 24 ||
		rows[0][2].StringVal() != "3" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSQLIndexAwareExecution(t *testing.T) {
	s, _, knows := newTestSession(t)
	if _, err := knows.CreateIndex(0); err != nil {
		t.Fatal(err)
	}
	// Register an indexed copy under a stable name.
	idx2, err := knows.CreateIndexOn("person1Id")
	if err != nil {
		t.Fatal(err)
	}
	_ = idx2
	// Find the generated name.
	var idxName string
	for _, n := range s.Tables() {
		if strings.HasPrefix(n, "knows_idx") {
			idxName = n
			break
		}
	}
	if idxName == "" {
		t.Fatal("indexed table not registered")
	}
	df := s.MustSQL("SELECT * FROM " + idxName + " WHERE person1Id = 42")
	explain, err := df.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(explain, "IndexLookup") {
		t.Fatalf("SQL equality on indexed column did not use IndexLookup:\n%s", explain)
	}
	n, err := df.Count()
	if err != nil || n != 2 {
		t.Fatalf("lookup rows = %d, %v", n, err)
	}
	// Indexed join through SQL.
	jdf := s.MustSQL("SELECT p.name FROM " + idxName + " k JOIN person p ON k.person1Id = p.id")
	jexplain, err := jdf.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jexplain, "IndexedJoin") {
		t.Fatalf("SQL equi-join on indexed column did not use IndexedJoin:\n%s", jexplain)
	}
	jn, err := jdf.Count()
	if err != nil || jn != 200 {
		t.Fatalf("indexed join rows = %d, %v", jn, err)
	}
}

func TestSQLSelfJoinAliases(t *testing.T) {
	s, _, _ := newTestSession(t)
	q := `SELECT k1.person1Id, k2.person2Id
	      FROM knows k1 JOIN knows k2 ON k1.person2Id = k2.person1Id
	      WHERE k1.person1Id = 0`
	n, err := s.MustSQL(q).Count()
	if err != nil || n != 4 {
		t.Fatalf("self join = %d, %v", n, err)
	}
}

func TestSQLCrossJoin(t *testing.T) {
	s, _, _ := newTestSession(t)
	n, err := s.MustSQL("SELECT p1.id FROM person p1 CROSS JOIN person p2 WHERE p1.id < 2 AND p2.id < 3").Count()
	if err != nil || n != 6 {
		t.Fatalf("cross join = %d, %v", n, err)
	}
}

func TestSQLLeftJoin(t *testing.T) {
	s, _, _ := newTestSession(t)
	// Every person has out-edges here, so left join row count matches inner.
	q := `SELECT p.id, k.person2Id FROM person p LEFT JOIN knows k ON p.id = k.person1Id`
	n, err := s.MustSQL(q).Count()
	if err != nil || n != 200 {
		t.Fatalf("left join = %d, %v", n, err)
	}
}

func TestSQLErrors(t *testing.T) {
	s, _, _ := newTestSession(t)
	cases := []string{
		"SELECT",                                            // truncated
		"SELECT * FROM missing_table",                       // unknown table
		"SELECT * FROM person WHERE",                        // truncated expr
		"SELECT * FROM person GROUP BY city",                // * with GROUP BY
		"SELECT id FROM person UNION SELECT id FROM person", // bare UNION
		"SELECT id FROM person ORDER",                       // truncated
		"SELECT no_such_col FROM person",                    // unknown column (analysis)
	}
	for _, q := range cases {
		df, err := s.SQL(q)
		if err == nil {
			_, err = df.Collect()
		}
		if err == nil {
			t.Errorf("query %q should fail", q)
		}
	}
}

func TestSQLComments(t *testing.T) {
	s, _, _ := newTestSession(t)
	n, err := s.MustSQL("SELECT id FROM person -- trailing comment\nWHERE id < 5").Count()
	if err != nil || n != 5 {
		t.Fatalf("comment query = %d, %v", n, err)
	}
}
