// Benchmarks for the vectorized batch-at-a-time engine: the same Figure 2
// workload executed with vectorization on (the default) and off
// (Config.DisableVectorized), so the two execution engines are compared on
// identical plans and data. Run with -benchmem: the vectorized path's
// advantage is both time and allocations.
package indexeddf_test

import (
	"sync"
	"testing"

	"indexeddf"
	"indexeddf/internal/bench"
	"indexeddf/internal/snb"
)

var (
	vecCmpOnce sync.Once
	vecCmpEnvs struct {
		vectorized *bench.Env
		row        *bench.Env
	}
)

// vectorizedEnvs loads the Figure 2 dataset (cluster regime) twice: one
// pair of sessions planning vectorized operators, one forced row-at-a-time.
func vectorizedEnvs(b *testing.B) (vectorized, row *bench.Env) {
	b.Helper()
	vecCmpOnce.Do(func() {
		mk := func(disable bool) *bench.Env {
			e, err := bench.NewEnv(bench.EnvConfig{ScaleFactor: benchSF, Seed: 1,
				BroadcastThreshold: 1, DisableVectorized: disable})
			if err != nil {
				b.Fatal(err)
			}
			return e
		}
		vecCmpEnvs.vectorized = mk(false)
		vecCmpEnvs.row = mk(true)
	})
	return vecCmpEnvs.vectorized, vecCmpEnvs.row
}

// pipelineOp is the acceptance workload: filter + project + aggregate over
// person_knows_person — every operator on the batch path, no index assist.
// The projection buckets person1Id so per-row work (filter kernel, arith
// kernel, key encode, accumulate) dominates over per-group output costs.
func pipelineOp(e *bench.Env) bench.Op {
	midDate := e.Dataset.Knows[len(e.Dataset.Knows)/2][2]
	return bench.Op{Name: "FilterProjectAggregate", Run: func(g *snb.Graph) (int, error) {
		knows := g.Knows
		if g.Indexed {
			knows = g.KnowsByP1
		}
		rows, err := knows.
			Filter(indexeddf.Gt(indexeddf.Col("creationDate"), indexeddf.Lit(midDate))).
			Select(
				indexeddf.As(indexeddf.Mod(indexeddf.Col("person1Id"), indexeddf.Lit(int64(64))), "bucket"),
				indexeddf.Col("person2Id")).
			GroupBy("bucket").
			Agg(indexeddf.CountAll(), indexeddf.Sum("person2Id"), indexeddf.Max("person2Id")).
			Collect()
		return len(rows), err
	}}
}

// BenchmarkVectorizedPipeline is the headline comparison: the same
// filter+project+aggregate query on both engines. Acceptance: Vectorized
// >=2x faster and >=5x fewer allocations than RowAtATime.
func BenchmarkVectorizedPipeline(b *testing.B) {
	vec, row := vectorizedEnvs(b)
	b.Run("Vectorized/Spark", func(b *testing.B) { runOp(b, pipelineOp(vec), vec.Vanilla) })
	b.Run("RowAtATime/Spark", func(b *testing.B) { runOp(b, pipelineOp(row), row.Vanilla) })
	b.Run("Vectorized/IndexedDF", func(b *testing.B) { runOp(b, pipelineOp(vec), vec.Indexed) })
	b.Run("RowAtATime/IndexedDF", func(b *testing.B) { runOp(b, pipelineOp(row), row.Indexed) })
}

// BenchmarkVectorizedFigure2 runs every Figure 2 operator on both engines
// with vectorization on and off — the per-operator view of the same story.
func BenchmarkVectorizedFigure2(b *testing.B) {
	vec, row := vectorizedEnvs(b)
	vecOps := bench.Figure2Ops(vec)
	rowOps := bench.Figure2Ops(row)
	for i := range vecOps {
		vop, rop := vecOps[i], rowOps[i]
		b.Run(vop.Name+"/Vectorized/Spark", func(b *testing.B) { runOp(b, vop, vec.Vanilla) })
		b.Run(rop.Name+"/RowAtATime/Spark", func(b *testing.B) { runOp(b, rop, row.Vanilla) })
		b.Run(vop.Name+"/Vectorized/IndexedDF", func(b *testing.B) { runOp(b, vop, vec.Indexed) })
		b.Run(rop.Name+"/RowAtATime/IndexedDF", func(b *testing.B) { runOp(b, rop, row.Indexed) })
	}
}
