// Threat detection and response — the paper's second motivating use case
// (§1, citing Brezinski & Armbrust, Spark Summit 2018): a security team
// keeps a continuously growing log of network events and needs sub-second
// point lookups ("has this indicator of compromise talked to us?") while
// ingest never stops. The Indexed DataFrame keeps the log cached and
// indexed by source IP under a firehose of appends.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"indexeddf"
)

func eventSchema() *indexeddf.Schema {
	return indexeddf.NewSchema(
		indexeddf.Field{Name: "srcIP", Type: indexeddf.String},
		indexeddf.Field{Name: "dstIP", Type: indexeddf.String},
		indexeddf.Field{Name: "dstPort", Type: indexeddf.Int32},
		indexeddf.Field{Name: "bytes", Type: indexeddf.Int64},
		indexeddf.Field{Name: "ts", Type: indexeddf.Timestamp},
	)
}

func randomEvent(rng *rand.Rand, t int64) indexeddf.Row {
	return indexeddf.R(
		fmt.Sprintf("10.%d.%d.%d", rng.Intn(4), rng.Intn(256), rng.Intn(256)),
		fmt.Sprintf("192.168.%d.%d", rng.Intn(16), rng.Intn(256)),
		int32([]int{22, 80, 443, 3389, 8080}[rng.Intn(5)]),
		int64(rng.Intn(1<<20)),
		indexeddf.V(time.UnixMicro(t).UTC()),
	)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sess := indexeddf.NewSession(indexeddf.Config{})
	rng := rand.New(rand.NewSource(1))

	// Historical events, indexed by source IP.
	var history []indexeddf.Row
	base := time.Date(2019, 6, 30, 0, 0, 0, 0, time.UTC).UnixMicro()
	for i := 0; i < 50_000; i++ {
		history = append(history, randomEvent(rng, base+int64(i)*1000))
	}
	events, err := sess.CreateTable("events", eventSchema(), history)
	if err != nil {
		return err
	}
	eventsByIP, err := events.CreateIndexOn("srcIP")
	if err != nil {
		return err
	}
	fmt.Printf("indexed %d historical events by srcIP\n", len(history))

	// A watchlist of indicators arrives from threat intel.
	watchlist := []string{"10.0.13.37", "10.1.2.3", "10.2.200.9"}
	// Plant some true positives so the hunt finds something.
	var plants []indexeddf.Row
	for i, ip := range watchlist[:2] {
		r := randomEvent(rng, base)
		r[0] = indexeddf.V(ip)
		r[2] = indexeddf.V(int32(3389))
		plants = append(plants, r)
		_ = i
	}
	if _, err := eventsByIP.AppendRowsSlice(plants); err != nil {
		return err
	}

	// The hunt: point lookups per indicator — each is one Ctrie probe plus
	// a chain walk instead of a 50k-row scan.
	for _, ip := range watchlist {
		start := time.Now()
		hits, err := eventsByIP.GetRows(ip)
		if err != nil {
			return err
		}
		rows, err := hits.Collect()
		if err != nil {
			return err
		}
		fmt.Printf("indicator %-12s -> %d hits in %v\n", ip, len(rows), time.Since(start))
	}

	// Response dashboards keep running while ingest continues: count RDP
	// (3389) connections per suspicious source.
	suspicious := eventsByIP.
		Filter(indexeddf.Eq(indexeddf.Col("dstPort"), indexeddf.Lit(int32(3389)))).
		GroupBy("srcIP").Count().
		OrderBy("-count").
		Limit(5)
	out, err := suspicious.Show(5)
	if err != nil {
		return err
	}
	fmt.Printf("\ntop RDP talkers:\n%s", out)

	// Ingest a live burst and re-check an indicator: visible immediately,
	// no recache.
	var burst []indexeddf.Row
	for i := 0; i < 10_000; i++ {
		burst = append(burst, randomEvent(rng, base+int64(i)))
	}
	evil := randomEvent(rng, base)
	evil[0] = indexeddf.V("10.1.2.3")
	burst = append(burst, evil)
	start := time.Now()
	if _, err := eventsByIP.AppendRowsSlice(burst); err != nil {
		return err
	}
	fmt.Printf("\ningested %d live events in %v\n", len(burst), time.Since(start))

	hits, err := eventsByIP.GetRows("10.1.2.3")
	if err != nil {
		return err
	}
	n, err := hits.Count()
	if err != nil {
		return err
	}
	fmt.Printf("indicator 10.1.2.3 now has %d hits (was 1)\n", n)
	return nil
}
