// Quickstart walks through the paper's Listing 1 — the Indexed DataFrame
// API — end to end: create an index on a DataFrame, cache it, look up keys,
// append rows (fine-grained and batch), and run an index-powered join. It
// finishes with the streaming query API: a Rows cursor with Scan, and a
// prepared statement with `?` placeholders served from the plan cache.
package main

import (
	"context"
	"fmt"
	"log"

	"indexeddf"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sess := indexeddf.NewSession(indexeddf.Config{})

	// A regular DataFrame: people and the edges between them.
	edgeSchema := indexeddf.NewSchema(
		indexeddf.Field{Name: "src", Type: indexeddf.Int64},
		indexeddf.Field{Name: "dst", Type: indexeddf.Int64},
		indexeddf.Field{Name: "weight", Type: indexeddf.Float64},
	)
	var rows []indexeddf.Row
	for i := 0; i < 1000; i++ {
		rows = append(rows, indexeddf.R(int64(i%100), int64((i+7)%100), float64(i)/1000))
	}
	regularDF, err := sess.CreateTable("edges", edgeSchema, rows)
	if err != nil {
		return err
	}

	// Listing 1, line 2: creating an index.
	indexedDF, err := regularDF.CreateIndex(0)
	if err != nil {
		return err
	}
	// Listing 1, line 4: caching the indexed data frame (a no-op for the
	// Indexed DataFrame — it is memory-resident by construction).
	indexedDF, err = indexedDF.Cache()
	if err != nil {
		return err
	}

	// Listing 1, lines 6-7: looking up a key returns a DataFrame with all
	// matching rows.
	lookupKey := int64(42)
	resultDataFrame, err := indexedDF.GetRows(lookupKey)
	if err != nil {
		return err
	}
	out, err := resultDataFrame.Show(5)
	if err != nil {
		return err
	}
	fmt.Printf("getRows(%d):\n%s\n", lookupKey, out)

	// Listing 1, line 9: appending all the rows of a regular dataframe.
	updates, err := sess.CreateTable("updates", edgeSchema, []indexeddf.Row{
		indexeddf.R(int64(42), int64(99), 0.5),
		indexeddf.R(int64(42), int64(98), 0.6),
	})
	if err != nil {
		return err
	}
	newIndexedDF, err := indexedDF.AppendRows(updates)
	if err != nil {
		return err
	}
	n, err := newIndexedDF.GetRows(lookupKey)
	if err != nil {
		return err
	}
	cnt, err := n.Count()
	if err != nil {
		return err
	}
	fmt.Printf("after appendRows, getRows(%d) returns %d rows\n\n", lookupKey, cnt)

	// Listing 1, line 11: index-powered, efficient join.
	nodeSchema := indexeddf.NewSchema(
		indexeddf.Field{Name: "id", Type: indexeddf.Int64},
		indexeddf.Field{Name: "label", Type: indexeddf.String},
	)
	var nodes []indexeddf.Row
	for i := 0; i < 100; i++ {
		nodes = append(nodes, indexeddf.R(int64(i), fmt.Sprintf("node-%02d", i)))
	}
	nodesDF, err := sess.CreateTable("nodes", nodeSchema, nodes)
	if err != nil {
		return err
	}
	result := indexedDF.Join(nodesDF,
		indexeddf.Eq(indexeddf.Col("src"), indexeddf.Col("nodes.id")))

	// The Catalyst-style planner routes this through IndexedJoin; see for
	// yourself:
	explain, err := result.Explain()
	if err != nil {
		return err
	}
	fmt.Println(explain)

	total, err := result.Count()
	if err != nil {
		return err
	}
	fmt.Printf("join produced %d rows\n\n", total)

	// Streaming query API: a database/sql-style cursor. Rows arrive as
	// partition tasks complete — first-row latency does not wait for the
	// whole scan — and cancelling ctx stops the remaining work.
	ctx := context.Background()
	cursor, err := newIndexedDF.Query(ctx)
	if err != nil {
		return err
	}
	defer cursor.Close()
	shown := 0
	for cursor.Next() && shown < 3 {
		var src, dst int64
		var weight float64
		if err := cursor.Scan(&src, &dst, &weight); err != nil {
			return err
		}
		fmt.Printf("streamed edge %d -> %d (weight %.3f)\n", src, dst, weight)
		shown++
	}
	if err := cursor.Err(); err != nil {
		return err
	}

	// Prepared statement: compiled once, `?` bound per execution from the
	// session's plan cache — the point-lookup path skips
	// parse/analyze/optimize/plan entirely on re-execution.
	stmt, err := sess.Prepare("SELECT src, dst, weight FROM edges WHERE src = ?")
	if err != nil {
		return err
	}
	for _, key := range []int64{7, 42, 55} {
		hits, err := stmt.Collect(ctx, key)
		if err != nil {
			return err
		}
		fmt.Printf("prepared lookup src=%d: %d rows\n", key, len(hits))
	}
	return nil
}
