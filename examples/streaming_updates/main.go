// Streaming updates with multi-version concurrency: a producer goroutine
// pushes fine-grained updates through a Kafka-like topic into an Indexed
// DataFrame while reader goroutines run consistent snapshot queries — the
// paper's §2 claim that the Indexed DataFrame "supports updates with
// multi-version concurrency" under a live stream.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"indexeddf"
	"indexeddf/internal/snb"
	"indexeddf/internal/stream"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sess := indexeddf.NewSession(indexeddf.Config{})
	data := snb.Generate(snb.Config{ScaleFactor: 0.3, Seed: 3})
	g, err := snb.Load(sess, data, true)
	if err != nil {
		return err
	}
	topic := stream.NewTopic("knows-updates", 4)

	var (
		produced  atomic.Int64
		applied   atomic.Int64
		queries   atomic.Int64
		wg        sync.WaitGroup
		stop      = make(chan struct{})
		coreTable = g.KnowsByP1.IndexedCore()
	)

	// Producer: new friendship edges into the topic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		us := snb.NewUpdateStream(data, 5)
		for {
			select {
			case <-stop:
				return
			default:
			}
			u := us.Next()
			if u.Kind != snb.AddKnows {
				continue
			}
			topic.Produce(u.Row[0], u.Row)
			produced.Add(1)
		}
	}()

	// Applier: consumes the topic and appends into the Indexed DataFrame
	// in fine-grained batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			msgs := topic.Poll("applier", 16)
			if len(msgs) == 0 {
				select {
				case <-stop:
					return
				default:
					continue
				}
			}
			rows := make([]indexeddf.Row, len(msgs))
			for i, m := range msgs {
				rows[i] = m.Row
			}
			if _, err := g.KnowsByP1.AppendRowsSlice(rows); err != nil {
				log.Printf("append: %v", err)
				return
			}
			applied.Add(int64(len(rows)))
		}
	}()

	// Readers: each query pins a snapshot; within one snapshot two counts
	// of the same key must agree no matter how fast writers append.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := indexeddf.V(data.Persons[10][0].Int64Val())
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := coreTable.Snapshot()
				a, err := snap.GetRows(key)
				if err != nil {
					log.Printf("read: %v", err)
					return
				}
				b, err := snap.GetRows(key)
				if err != nil || len(a) != len(b) {
					log.Printf("SNAPSHOT VIOLATION: %d != %d (%v)", len(a), len(b), err)
					return
				}
				queries.Add(1)
			}
		}()
	}

	start := time.Now()
	for tick := 0; tick < 5; tick++ {
		time.Sleep(200 * time.Millisecond)
		fmt.Printf("t=%4dms produced=%6d applied=%6d snapshot-queries=%6d rows=%d\n",
			time.Since(start).Milliseconds(), produced.Load(), applied.Load(),
			queries.Load(), coreTable.RowCount())
	}
	close(stop)
	wg.Wait()

	fmt.Printf("\nfinal: %d updates applied, %d consistent snapshot queries, 0 violations\n",
		applied.Load(), queries.Load())
	version := coreTable.Version()
	fmt.Printf("table advanced through %d versions while staying cached and indexed\n", version)
	return nil
}
