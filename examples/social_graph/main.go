// Social graph monitoring — the paper's §1 motivating workload: on-line
// analytics over a changing social graph, where graph navigation is
// join-intensive and updates keep arriving. The example loads an SNB-like
// graph, runs friend-of-friend and influencer analyses through SQL and the
// DataFrame API, applies a burst of updates, and re-runs the analyses on
// the fresh state.
package main

import (
	"fmt"
	"log"

	"indexeddf"
	"indexeddf/internal/snb"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sess := indexeddf.NewSession(indexeddf.Config{})
	data := snb.Generate(snb.Config{ScaleFactor: 0.5, Seed: 7})
	g, err := snb.Load(sess, data, true)
	if err != nil {
		return err
	}
	fmt.Printf("loaded graph: %d persons, %d knows edges\n\n",
		len(data.Persons), len(data.Knows))

	// Influencers: most-followed people (GROUP BY on the indexed frame).
	influencers, err := sess.MustSQL(`
		SELECT person2Id, COUNT(*) AS followers
		FROM knows GROUP BY person2Id
		ORDER BY followers DESC, person2Id LIMIT 5`).Collect()
	if err != nil {
		return err
	}
	fmt.Println("top influencers (personId, followers):")
	for _, r := range influencers {
		fmt.Printf("  %v\n", r)
	}

	// Friends of friends of the top influencer — two indexed joins.
	top := influencers[0][0].Int64Val()
	k1, err := g.KnowsByP1.As("k1")
	if err != nil {
		return err
	}
	k2, err := g.KnowsByP1.As("k2")
	if err != nil {
		return err
	}
	fof, err := k1.
		Filter(indexeddf.Eq(indexeddf.Col("k1.person1Id"), indexeddf.Lit(top))).
		Join(k2, indexeddf.Eq(indexeddf.Col("k1.person2Id"), indexeddf.Col("k2.person1Id"))).
		SelectCols("k2.person2Id").
		Distinct()
	if err != nil {
		return err
	}
	nFof, err := fof.Count()
	if err != nil {
		return err
	}
	fmt.Printf("\nperson %d reaches %d people within two hops\n", top, nFof)

	// The short reads, live.
	profile, err := snb.IS1(g, top)
	if err != nil {
		return err
	}
	fmt.Printf("profile of %d: %v\n", top, profile)
	friends, err := snb.IS3(g, top)
	if err != nil {
		return err
	}
	fmt.Printf("person %d has %d direct friends\n\n", top, len(friends))

	// The graph keeps moving: apply an update burst and observe new state
	// without recaching anything.
	us := snb.NewUpdateStream(data, 9)
	if err := snb.Apply(g, us.Batch(500)); err != nil {
		return err
	}
	friendsAfter, err := snb.IS3(g, top)
	if err != nil {
		return err
	}
	fmt.Printf("after 500 streamed updates person %d has %d direct friends\n",
		top, len(friendsAfter))

	// Multi-version concurrency: a snapshot taken before more appends keeps
	// answering with the old state.
	core := g.KnowsByP1.IndexedCore()
	snapshot := core.Snapshot()
	if err := snb.Apply(g, us.Batch(500)); err != nil {
		return err
	}
	old, err := snapshot.GetRows(indexeddf.V(top))
	if err != nil {
		return err
	}
	fresh, err := core.Snapshot().GetRows(indexeddf.V(top))
	if err != nil {
		return err
	}
	fmt.Printf("snapshot pinned before the second burst sees %d edges; a fresh snapshot sees %d\n",
		len(old), len(fresh))
	return nil
}
