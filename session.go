// Package indexeddf is a Go reproduction of "Low-latency Spark Queries on
// Updatable Data" (Uta, Ghit, Dave, Boncz — SIGMOD 2019): the Indexed
// DataFrame, a cached, updatable DataFrame with a built-in concurrent Ctrie
// index supporting sub-linear point lookups, low-latency equality filters
// and index-powered joins under continuous fine-grained appends, with
// multi-version concurrency.
//
// The package exposes a Spark-like Session/DataFrame API (the paper's
// Listing 1) executing on a from-scratch engine: partitioned RDDs with
// shuffles and a DAG scheduler, a columnar in-memory cache for the vanilla
// baseline, a Catalyst-style analyzer/optimizer/planner with the paper's
// index-aware rules, and a SQL front end.
package indexeddf

import (
	"context"
	"fmt"
	"sync"
	"time"

	"indexeddf/internal/catalog"
	"indexeddf/internal/core"
	"indexeddf/internal/memory"
	"indexeddf/internal/obs"
	"indexeddf/internal/opt"
	"indexeddf/internal/physical"
	"indexeddf/internal/plan"
	"indexeddf/internal/rdd"
	"indexeddf/internal/spill"
	"indexeddf/internal/sqltypes"
)

// Config tunes a Session.
type Config struct {
	// Parallelism is the task pool width (default GOMAXPROCS).
	Parallelism int
	// ShufflePartitions is the reduce-side partition count (default 4).
	ShufflePartitions int
	// BroadcastThreshold is the row estimate under which join sides are
	// broadcast (default 10000).
	BroadcastThreshold int64
	// SortPartitions is the partition count for a vectorized sort's final
	// merge stage when out-of-core execution is enabled (the
	// range-partitioned parallel merge). 0 follows ShufflePartitions;
	// 1 forces the single k-way merge task (the ablation baseline).
	// Without a SpillDir the knob is inert — the merge is always single.
	SortPartitions int
	// TablePartitions is the partition count for created tables and
	// indexes (default 4).
	TablePartitions int
	// IndexBatchSize is the row-batch size for indexed tables in bytes
	// (default 4 MB, the paper's value).
	IndexBatchSize int
	// DisableVectorized forces row-at-a-time execution, turning off the
	// batch-at-a-time operator rewrite (benchmarks compare both engines).
	DisableVectorized bool
	// DisableViewRewrite stops the planner answering aggregations from
	// materialized views, forcing from-scratch computation (the escape
	// hatch mirroring DisableVectorized; equivalence tests and benchmarks
	// compare both paths). Views can still be created, refreshed and
	// queried by name.
	DisableViewRewrite bool
	// QueryTimeout is the session-wide default deadline applied to every
	// query started without one of its own (Query, Collect, Stmt.Query).
	// Zero means no timeout. Expiry cancels the query's remaining
	// partition tasks and surfaces context.DeadlineExceeded from
	// Rows.Err().
	QueryTimeout time.Duration
	// PlanCacheSize bounds the session's LRU cache of compiled prepared
	// statements, keyed on normalized SQL (default 128 entries).
	PlanCacheSize int
	// MemoryLimit bounds the engine-wide bytes queries may hold in
	// materialized state (shuffle buckets, hash-aggregate tables, sort
	// runs, top-n stores, cursor slot buffers). Zero means unbounded. A
	// query pushing the engine past the limit fails with
	// memory.ErrMemoryExceeded naming the operator; concurrent queries
	// under budget keep running. New queries are also refused admission
	// while the pool is saturated.
	MemoryLimit int64
	// QueryMemoryLimit bounds each individual query's share of the above
	// (zero = only the engine limit applies).
	QueryMemoryLimit int64
	// SpillDir enables out-of-core execution: blocking operators (sort
	// runs, shuffle outputs, shuffle-join build sides) over budget spill
	// sealed runs to files under this directory instead of failing, and
	// stream them back. The session creates a private subdirectory removed
	// by Session.Close. Empty disables spilling — over-budget queries then
	// fail with memory.ErrMemoryExceeded exactly as before. Spilling only
	// engages for queries that carry a memory budget (MemoryLimit or
	// QueryMemoryLimit set); unbudgeted sessions never touch the disk.
	SpillDir string
	// DisableObservability turns off per-query instrumentation: no operator
	// stats, no trace events, no EXPLAIN ANALYZE annotations (the statement
	// still runs, producing a plan without actuals). The metrics registry
	// stays available — engine-global counters (tasks, shuffle bytes, plan
	// cache) cost nothing extra. When disabled, operators receive nil stat
	// handles and their recording paths collapse to the untouched iterators.
	DisableObservability bool
	// TraceCapacity bounds the session's query-trace ring buffer in events
	// (default obs.DefaultTraceCapacity). Oldest events are overwritten.
	TraceCapacity int
	// SlowQueryThreshold, when positive, marks any query whose wall time
	// meets or exceeds it as slow: SlowQueryLog fires with the finished
	// query's annotated plan and indexeddf_queries_slow_total increments.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives each slow query (see SlowQueryThreshold). Called
	// synchronously from the cursor's shutdown path — keep it fast, or hand
	// off to a channel. Ignored when SlowQueryThreshold is zero.
	SlowQueryLog func(SlowQuery)
	// DisableStats turns off table statistics: no incremental collection
	// on created tables (appends skip the per-row accumulator work) and
	// no statistics-driven planning — cost estimates fall back to the
	// structural defaults and the plan-time conjunct reorder rule is
	// skipped. ANALYZE TABLE still works, building statistics on demand
	// for its table, but the planner ignores them while this is set.
	DisableStats bool
	// DisableAdaptiveFilter turns off runtime conjunct re-ranking inside
	// vectorized filters: multi-conjunct predicates evaluate as a single
	// fused kernel in plan order instead of a self-reordering cascade
	// (benchmarks compare both; the cascade also short-circuits, so this
	// ablation isolates the full win of the adaptive path).
	DisableAdaptiveFilter bool
}

func (c Config) withDefaults() Config {
	if c.ShufflePartitions <= 0 {
		c.ShufflePartitions = 4
	}
	if c.BroadcastThreshold <= 0 {
		c.BroadcastThreshold = 10_000
	}
	if c.TablePartitions <= 0 {
		c.TablePartitions = 4
	}
	return c
}

// Session is the entry point: it owns the execution context, the catalog
// and the planner. Safe for concurrent use.
type Session struct {
	cfg     Config
	ctx     *rdd.Context
	planner *opt.Planner

	views *catalog.ViewRegistry
	plans *planCache
	mem   *memory.Pool
	spill *spill.Manager

	// Observability: the metrics registry is always present (engine-global
	// counters are free); the tracer and per-query stats are nil when
	// Config.DisableObservability is set.
	metrics  *obs.Registry
	tracer   *obs.Tracer
	qStarted *obs.Counter
	qDone    *obs.Counter
	qFailed  *obs.Counter
	qSlow    *obs.Counter
	qRows    *obs.Counter
	qDur     *obs.Histogram
	ingBatch *obs.Counter
	ingRows  *obs.Counter

	// ddl serializes multi-step catalog operations (dropping a table and
	// its dependent views, creating a view over a base table) so a view
	// cannot be registered over a base that a concurrent DropTable is
	// tearing down.
	ddl sync.Mutex

	mu     sync.RWMutex
	tables map[string]catalog.Table
	anon   int
}

// NewSession creates a Session.
func NewSession(cfg Config) *Session {
	cfg = cfg.withDefaults()
	var ctxOpts []rdd.Option
	if cfg.Parallelism > 0 {
		ctxOpts = append(ctxOpts, rdd.WithParallelism(cfg.Parallelism))
	}
	var spillMgr *spill.Manager
	if cfg.SpillDir != "" {
		spillMgr = spill.NewManager(cfg.SpillDir)
		ctxOpts = append(ctxOpts, rdd.WithSpill(spillMgr))
	}
	views := catalog.NewViewRegistry()
	pool := memory.NewPool(cfg.MemoryLimit)
	s := &Session{
		cfg:   cfg,
		mem:   pool,
		spill: spillMgr,
		ctx:   rdd.NewContext(ctxOpts...),
		planner: opt.NewPlanner(opt.PlannerConfig{
			ShufflePartitions:     cfg.ShufflePartitions,
			BroadcastThreshold:    cfg.BroadcastThreshold,
			SortPartitions:        cfg.SortPartitions,
			DisableVectorized:     cfg.DisableVectorized,
			Views:                 views,
			DisableViewRewrite:    cfg.DisableViewRewrite,
			DisableStats:          cfg.DisableStats,
			DisableAdaptiveFilter: cfg.DisableAdaptiveFilter,
		}),
		views:  views,
		plans:  newPlanCache(cfg.PlanCacheSize, pool),
		tables: make(map[string]catalog.Table),
	}
	s.initObservability()
	return s
}

// Context exposes the underlying RDD context (benchmarks use it).
func (s *Session) Context() *rdd.Context { return s.ctx }

// Close releases session-owned disk state: the spill manager's private
// directory is swept (any run file a crashed or leaked query left behind
// is removed along with it). Queries still running lose their spilled
// runs and fail on next read. Safe on sessions without a SpillDir, and
// idempotent.
func (s *Session) Close() error { return s.spill.Close() }

// MemoryPool exposes the session's engine-level memory pool (tests and
// monitoring use it; Used() drains back to zero when no query is running).
func (s *Session) MemoryPool() *memory.Pool { return s.mem }

// CreateTable registers an in-memory table from rows (hash-free round-robin
// partitioning, like a parallelized collection) and returns a DataFrame
// over it.
func (s *Session) CreateTable(name string, schema *sqltypes.Schema, rows []sqltypes.Row) (*DataFrame, error) {
	n := s.cfg.TablePartitions
	parts := make([][]sqltypes.Row, n)
	for i, r := range rows {
		if len(r) != schema.Len() {
			return nil, fmt.Errorf("indexeddf: row %d arity %d does not match schema %s", i, len(r), schema)
		}
		parts[i%n] = append(parts[i%n], r)
	}
	t := catalog.NewColumnTable(name, schema, parts)
	if !s.cfg.DisableStats {
		t.EnableStats()
	}
	if err := s.register(name, t); err != nil {
		return nil, err
	}
	return s.frame(plan.NewRelation(t, name)), nil
}

// CreateIndexedTable registers an empty Indexed DataFrame table indexed on
// keyCol and returns a DataFrame over it. Rows are added with AppendRows.
func (s *Session) CreateIndexedTable(name string, schema *sqltypes.Schema, keyCol int) (*DataFrame, error) {
	ct, err := core.NewIndexedTable(schema, keyCol, core.Options{
		NumPartitions: s.cfg.TablePartitions,
		BatchSize:     s.cfg.IndexBatchSize,
	})
	if err != nil {
		return nil, err
	}
	t := catalog.NewIndexedTable(name, ct)
	if !s.cfg.DisableStats {
		t.EnableStats()
	}
	if err := s.register(name, t); err != nil {
		return nil, err
	}
	return s.frame(plan.NewRelation(t, name)), nil
}

// AnalyzeTable recomputes a table's statistics from a full scan,
// enabling collection for that table even when Config.DisableStats
// turned automatic collection off (the planner still ignores the
// result while stats are disabled). It heals the invalidation a Delete
// causes: incremental statistics cannot un-observe rows, so deleting
// invalidates them until the next ANALYZE.
func (s *Session) AnalyzeTable(name string) error {
	s.mu.RLock()
	t, ok := s.tables[name]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("indexeddf: table %q not found", name)
	}
	switch tt := t.(type) {
	case *catalog.ColumnTable:
		tt.RebuildStats()
		return nil
	case *catalog.IndexedTable:
		return tt.RebuildStats()
	default:
		return fmt.Errorf("indexeddf: table %q does not support statistics", name)
	}
}

// Table returns a DataFrame over a registered table.
func (s *Session) Table(name string) (*DataFrame, error) {
	s.mu.RLock()
	t, ok := s.tables[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("indexeddf: table %q not found", name)
	}
	return s.frame(plan.NewRelation(t, name)), nil
}

// DropTable removes a table from the catalog. Dropping a base table also
// drops every materialized view defined over it (their change capture is
// turned off and retained logs discarded); dropping a view by name behaves
// like DropMaterializedView. Compiled plans referencing the dropped
// entries are purged from the plan cache; plans over other tables stay
// warm.
func (s *Session) DropTable(name string) {
	s.ddl.Lock()
	defer s.ddl.Unlock()
	s.mu.Lock()
	t := s.tables[name]
	delete(s.tables, name)
	s.mu.Unlock()
	dropped := []string{name}
	defer func() { s.plans.purgeTables(dropped...) }()
	// The name may itself be a materialized view.
	if v, ok := s.views.Get(name); ok {
		s.views.Drop(name)
		if len(s.views.ForBase(v.Base())) == 0 {
			v.Base().DisableChangeCapture()
		}
		return
	}
	// A dropped base table orphans every view defined over it: drop them
	// all, then turn the table's change capture off.
	it, ok := t.(*catalog.IndexedTable)
	if !ok {
		return
	}
	views := s.views.ForBase(it.Core())
	if len(views) == 0 {
		return
	}
	s.mu.Lock()
	for _, v := range views {
		s.views.Drop(v.Name())
		delete(s.tables, v.Name())
		dropped = append(dropped, v.Name())
	}
	s.mu.Unlock()
	it.Core().DisableChangeCapture()
}

// Tables lists registered table names.
func (s *Session) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for n := range s.tables {
		out = append(out, n)
	}
	return out
}

// LookupTable returns the catalog entry for name.
func (s *Session) LookupTable(name string) (catalog.Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	return t, ok
}

func (s *Session) register(name string, t catalog.Table) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.tables[name]; exists {
		return fmt.Errorf("indexeddf: table %q already exists", name)
	}
	s.tables[name] = t
	// A new catalog entry may shadow what a cached plan resolved against;
	// plans over other tables stay warm.
	s.plans.purgeTables(name)
	return nil
}

func (s *Session) anonName(prefix string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.anon++
	return fmt.Sprintf("%s_%d", prefix, s.anon)
}

func (s *Session) frame(n plan.Node) *DataFrame { return &DataFrame{sess: s, node: n} }

// compile runs the full Catalyst-style pipeline: analyze, optimize, plan.
func (s *Session) compile(n plan.Node) (physical.Exec, error) {
	analyzed, err := opt.Analyze(n)
	if err != nil {
		return nil, err
	}
	optimized, err := s.planner.Optimize(analyzed)
	if err != nil {
		return nil, err
	}
	return s.planner.Plan(optimized)
}

// execute compiles and runs a plan to completion, returning all rows — a
// thin wrapper over the streaming cursor path (queryNode + drain), kept as
// the engine's batch entry point.
func (s *Session) execute(n plan.Node) ([]sqltypes.Row, error) {
	return s.executeCtx(context.Background(), n)
}

// executeCtx is execute under a cancellation context.
func (s *Session) executeCtx(ctx context.Context, n plan.Node) ([]sqltypes.Row, error) {
	rows, err := s.queryNode(ctx, n)
	if err != nil {
		return nil, err
	}
	return drainRows(rows)
}
