package indexeddf

import (
	"strings"
	"testing"
)

// Failure-injection coverage: errors produced at any layer (parse,
// analysis, planning, runtime evaluation, storage limits) must surface as
// errors from actions, never as panics or silent wrong results.

func TestRuntimeCastErrorPropagates(t *testing.T) {
	s := NewSession(Config{})
	df, err := s.CreateTable("t", NewSchema(Field{Name: "s", Type: String}),
		[]Row{R("123"), R("not-a-number")})
	if err != nil {
		t.Fatal(err)
	}
	// A sane projection works...
	if _, err = df.Select(Fn("length", Col("s"))).Collect(); err != nil {
		t.Fatal(err)
	}
	// ...but CAST fails on the second row at evaluation time.
	q, err := s.SQL("SELECT CAST(s AS BIGINT) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Collect(); err == nil {
		t.Fatal("runtime cast failure did not propagate")
	} else if !strings.Contains(err.Error(), "cannot cast") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDivisionByZeroIsNullNotError(t *testing.T) {
	s := NewSession(Config{})
	df, err := s.CreateTable("t", NewSchema(Field{Name: "a", Type: Int64}), []Row{R(int64(10))})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Select(Div(Col("a"), Lit(0))).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if !rows[0][0].IsNull() {
		t.Fatalf("10/0 = %v, want NULL", rows[0][0])
	}
}

func TestOversizedRowRejectedOnAppend(t *testing.T) {
	s := NewSession(Config{})
	df, err := s.CreateIndexedTable("big", NewSchema(
		Field{Name: "k", Type: Int64},
		Field{Name: "payload", Type: String},
	), 0)
	if err != nil {
		t.Fatal(err)
	}
	huge := strings.Repeat("x", 1<<20) // 1 MiB > 16 KiB row cap
	if _, err := df.AppendRowsSlice([]Row{R(int64(1), huge)}); err == nil {
		t.Fatal("oversized row accepted")
	}
	// The table stays usable after the failed append.
	if _, err := df.AppendRowsSlice([]Row{R(int64(1), "small")}); err != nil {
		t.Fatal(err)
	}
	n, err := df.Count()
	if err != nil || n != 1 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

func TestGetRowsOnNonIndexedFails(t *testing.T) {
	s := NewSession(Config{})
	df, err := s.CreateTable("t", NewSchema(Field{Name: "a", Type: Int64}), []Row{R(int64(1))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.GetRows(1); err == nil {
		t.Fatal("GetRows on vanilla table accepted")
	}
	if _, err := df.Filter(Eq(Col("a"), Lit(1))).AppendRowsSlice(nil); err == nil {
		t.Fatal("AppendRows on derived frame accepted")
	}
	if _, err := df.Filter(Eq(Col("a"), Lit(1))).As("x"); err == nil {
		t.Fatal("As on derived frame accepted")
	}
}

func TestCreateIndexValidation(t *testing.T) {
	s := NewSession(Config{})
	df, err := s.CreateTable("t", NewSchema(Field{Name: "a", Type: Int64}), []Row{R(int64(1))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.CreateIndex(5); err == nil {
		t.Fatal("out-of-range index column accepted")
	}
	if _, err := df.CreateIndexOn("missing"); err == nil {
		t.Fatal("unknown index column accepted")
	}
}

func TestJoinArityAndUnknownColumnErrors(t *testing.T) {
	s := NewSession(Config{})
	a, err := s.CreateTable("a", NewSchema(Field{Name: "x", Type: Int64}), []Row{R(int64(1))})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.CreateTable("b", NewSchema(Field{Name: "y", Type: Int64}), []Row{R(int64(1))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Join(b, Eq(Col("x"), Col("nope"))).Collect(); err == nil {
		t.Fatal("join on unknown column accepted")
	}
	// Union of incompatible schemas fails at analysis.
	c, err := s.CreateTable("c", NewSchema(
		Field{Name: "x", Type: Int64}, Field{Name: "z", Type: String}), []Row{R(int64(1), "s")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Union(c).Collect(); err == nil {
		t.Fatal("incompatible union accepted")
	}
}

func TestAmbiguousColumnReference(t *testing.T) {
	s := NewSession(Config{})
	mk := func(name string) *DataFrame {
		df, err := s.CreateTable(name, NewSchema(Field{Name: "id", Type: Int64}), []Row{R(int64(1))})
		if err != nil {
			t.Fatal(err)
		}
		return df
	}
	a, b := mk("a"), mk("b")
	// "id" is ambiguous across the join; qualified refs work.
	if _, err := a.Join(b, Eq(Col("a.id"), Col("b.id"))).SelectCols("id").Collect(); err == nil {
		t.Fatal("ambiguous column accepted")
	}
	if _, err := a.Join(b, Eq(Col("a.id"), Col("b.id"))).SelectCols("a.id").Collect(); err != nil {
		t.Fatalf("qualified column rejected: %v", err)
	}
}
